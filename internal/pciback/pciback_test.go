package pciback

import (
	"errors"
	"testing"

	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

func setup(t *testing.T) (*sim.Env, *hv.Hypervisor, *PCIBack, *hv.Domain) {
	t.Helper()
	env := sim.NewEnv(1)
	machine := hw.NewMachine(env)
	h := hv.New(env, machine)
	pb, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "pciback", MemMB: 256, Shard: true})
	h.Unpause(hv.SystemCaller, pb.ID)
	h.GrantIOPorts(hv.SystemCaller, pb.ID, "pci")
	nb, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "netback", MemMB: 128, Shard: true})
	h.Unpause(hv.SystemCaller, nb.ID)
	logic := xenstore.NewLogic(env, xenstore.NewState())
	p := New(h, pb.ID, machine.Bus, logic.Connect(pb.ID, true))
	return env, h, p, nb
}

func TestStartEnumerates(t *testing.T) {
	env, _, pb, _ := setup(t)
	var err error
	env.Spawn("boot", func(p *sim.Proc) { err = pb.Start(p) })
	end := env.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Devices()) != 2 {
		t.Fatalf("devices = %d", len(pb.Devices()))
	}
	if sim.Duration(end) < pb.Bus.EnumTime {
		t.Fatalf("enumeration too fast: %v", sim.Duration(end))
	}
	if len(pb.DevicesOfClass(xtypes.DevNIC)) != 1 {
		t.Fatal("NIC not classified")
	}
	// Inventory published in XenStore.
	if _, err := pb.XS.Read(xenstore.TxNone, "/local/domain/0/pci/dev-0"); err != nil {
		t.Fatalf("xenstore inventory: %v", err)
	}
}

func TestProxyConfigAccessRequiresAssignment(t *testing.T) {
	env, h, pb, nb := setup(t)
	env.Spawn("test", func(p *sim.Proc) {
		if err := pb.Start(p); err != nil {
			t.Error(err)
			return
		}
		nicAddr := pb.DevicesOfClass(xtypes.DevNIC)[0].Addr()
		// Before assignment: denied.
		if err := pb.ProxyConfigAccess(p, nb.ID, nicAddr); !errors.Is(err, xtypes.ErrPerm) {
			t.Errorf("unassigned config access: %v", err)
		}
		h.AssignPrivileges(hv.SystemCaller, nb.ID, hv.Assignment{PCIDevices: []xtypes.PCIAddr{nicAddr}})
		if err := pb.ProxyConfigAccess(p, nb.ID, nicAddr); err != nil {
			t.Errorf("assigned config access: %v", err)
		}
		if pb.ProxiedOps != 1 {
			t.Errorf("proxied = %d", pb.ProxiedOps)
		}
	})
	env.RunAll()
}

func TestSelfDestructLeavesDevicesAssigned(t *testing.T) {
	env, h, pb, nb := setup(t)
	env.Spawn("test", func(p *sim.Proc) {
		pb.Start(p)
		nicAddr := pb.DevicesOfClass(xtypes.DevNIC)[0].Addr()
		h.AssignPrivileges(hv.SystemCaller, nb.ID, hv.Assignment{PCIDevices: []xtypes.PCIAddr{nicAddr}})
		if err := pb.SelfDestruct(p); err != nil {
			t.Error(err)
			return
		}
		// The domain is gone, the host is fine, the NIC stays with NetBack.
		if _, err := h.Domain(pb.Dom); !errors.Is(err, xtypes.ErrNoDomain) {
			t.Error("pciback domain survived")
		}
		if h.CrashedHost {
			t.Error("self-destruct crashed host")
		}
		if pb.Bus.AssignedTo(nicAddr) != nb.ID {
			t.Error("device assignment lost")
		}
		// Further proxying is impossible — steady state needs no config access.
		if err := pb.ProxyConfigAccess(p, nb.ID, nicAddr); !errors.Is(err, xtypes.ErrShutdown) {
			t.Errorf("proxy after destruct: %v", err)
		}
	})
	env.RunAll()
}

func TestStartRequiresPorts(t *testing.T) {
	env := sim.NewEnv(1)
	machine := hw.NewMachine(env)
	h := hv.New(env, machine)
	d, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "pciback", MemMB: 256, Shard: true})
	h.Unpause(hv.SystemCaller, d.ID)
	logic := xenstore.NewLogic(env, xenstore.NewState())
	pb := New(h, d.ID, machine.Bus, logic.Connect(d.ID, true))
	var err error
	env.Spawn("boot", func(p *sim.Proc) { err = pb.Start(p) })
	env.RunAll()
	if !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("start without pci ports: %v", err)
	}
}
