// Package pciback implements the PCIBack shard (§5.3): the closest analogue
// Xoar has to Dom0. It initializes the hardware, enumerates the PCI bus,
// virtualizes the shared PCI configuration space for driver domains, and —
// once every device is running and no further config-space access is needed
// — can be destroyed entirely, removing a privileged component from the
// system's steady-state TCB.
package pciback

import (
	"fmt"

	"xoar/internal/hv"
	"xoar/internal/sim"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"

	hwpkg "xoar/internal/hw"
)

// perConfigOpCPU is the cost of proxying one config-space access.
const perConfigOpCPU = 10 * sim.Microsecond

// PCIBack is the PCI bus owner.
type PCIBack struct {
	H   *hv.Hypervisor
	Dom xtypes.DomID
	Bus *hwpkg.PCIBus
	XS  *xenstore.Conn

	devices   []hwpkg.Device
	destroyed bool

	ProxiedOps int64
}

// New constructs PCIBack in domain dom.
func New(h *hv.Hypervisor, dom xtypes.DomID, bus *hwpkg.PCIBus, xs *xenstore.Conn) *PCIBack {
	return &PCIBack{H: h, Dom: dom, Bus: bus, XS: xs}
}

// Start claims the PCI config space, enumerates the bus (the expensive
// hardware bring-up of Table 6.2), and publishes the inventory in XenStore
// so udev-style rules can request driver domains for each device (§5.2).
func (pb *PCIBack) Start(p *sim.Proc) error {
	if !pb.H.HasIOPorts(pb.Dom, "pci") {
		return fmt.Errorf("pciback: no PCI I/O-port access: %w", xtypes.ErrPerm)
	}
	if err := pb.Bus.ClaimConfigSpace(pb.Dom); err != nil {
		return err
	}
	devs, err := pb.Bus.Enumerate(p, pb.Dom)
	if err != nil {
		return err
	}
	pb.devices = devs
	for i, d := range devs {
		pb.XS.Write(xenstore.TxNone,
			fmt.Sprintf("/local/domain/%d/pci/dev-%d", pb.Dom, i),
			fmt.Sprintf("%s %s %s", d.Addr(), d.Class(), d.Name()))
	}
	return nil
}

// Devices returns the enumerated inventory.
func (pb *PCIBack) Devices() []hwpkg.Device { return pb.devices }

// DevicesOfClass filters the inventory by class.
func (pb *PCIBack) DevicesOfClass(c xtypes.DeviceClass) []hwpkg.Device {
	var out []hwpkg.Device
	for _, d := range pb.devices {
		if d.Class() == c {
			out = append(out, d)
		}
	}
	return out
}

// ProxyConfigAccess performs a config-space access on behalf of a driver
// domain during its device initialization. Only the domain holding the
// device (via passthrough assignment) may touch its config registers; the
// shared bus is multiplexed through this single component (§5.3).
func (pb *PCIBack) ProxyConfigAccess(p *sim.Proc, caller xtypes.DomID, addr xtypes.PCIAddr) error {
	if pb.destroyed {
		return fmt.Errorf("pciback: destroyed: %w", xtypes.ErrShutdown)
	}
	if err := pb.Bus.CheckAccess(caller, addr); err != nil {
		return err
	}
	pb.H.Compute(p, pb.Dom, perConfigOpCPU)
	if err := pb.Bus.ConfigAccess(pb.Dom, addr); err != nil {
		return err
	}
	pb.ProxiedOps++
	return nil
}

// SelfDestruct removes PCIBack once steady state is reached: config space is
// released and the domain exits, shrinking the set of privileged components
// (§5.3). Devices stay assigned to their driver domains; only new
// enumeration or hotplug would need a fresh PCIBack.
func (pb *PCIBack) SelfDestruct(p *sim.Proc) error {
	pb.destroyed = true
	pb.Bus.ReleaseConfigSpace(pb.Dom)
	return pb.H.SelfExit(pb.Dom)
}

// Destroyed reports whether PCIBack has self-destructed.
func (pb *PCIBack) Destroyed() bool { return pb.destroyed }
