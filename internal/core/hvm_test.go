package core

import (
	"errors"
	"testing"

	"xoar/internal/builder"
	"xoar/internal/seceval"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

func TestHVMGuestThroughQemuVM(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	g, err := pl.CreateGuest(GuestSpec{Name: "win", HVM: true, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Qemu() == nil {
		t.Fatal("no device model attached")
	}
	qdom := g.rec.QemuDom

	// The stub domain exists, is a shard, and holds DMA rights over exactly
	// this guest.
	qd, err := pl.HV.Domain(qdom)
	if err != nil {
		t.Fatal(err)
	}
	if !qd.IsShard() {
		t.Fatal("QemuVM not a shard")
	}
	if err := pl.HV.MapForeign(qdom, g.Dom, 0); err != nil {
		t.Fatalf("qemu mapping its guest: %v", err)
	}
	pl.HV.UnmapForeign(qdom, g.Dom)

	// Emulated disk I/O flows through Qemu's PV frontend to BlkBack.
	before := pl.Boot.BlkBacks[0].CompletedReqs
	if err := g.EmulatedDiskWrite(1<<20, true); err != nil {
		t.Fatal(err)
	}
	if pl.Boot.BlkBacks[0].CompletedReqs <= before {
		t.Fatal("emulated I/O never reached the driver shard")
	}

	// Containment: a compromised device model cannot touch another guest.
	victim, err := pl.CreateGuest(GuestSpec{Name: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.HV.MapForeign(qdom, victim.Dom, 0); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("qemu escape: %v", err)
	}

	// The security analyzer anchors device-emulation CVEs to this QemuVM.
	an := seceval.NewAnalyzer(pl.Boot, seceval.Options{
		DeprivilegedGuests: true, Attacker: g.Dom, QemuOf: qdom,
	})
	rep := an.Run()
	if rep.ByOutcome[seceval.OutContained] != 7 {
		t.Fatalf("contained = %d", rep.ByOutcome[seceval.OutContained])
	}

	// Destroying the guest reaps the device model with it (Table 5.1).
	if err := pl.DestroyGuest(g); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.HV.Domain(qdom); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatal("QemuVM outlived its guest")
	}
}

func TestQemuBuildRefusedForForeignGuest(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 13, Toolstacks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	// Toolstack 0 owns a guest; toolstack 1 asks the Builder for a QemuVM
	// over it — a privilege-escalation attempt (DMA rights over someone
	// else's guest) the Builder must refuse.
	g, err := pl.CreateGuest(GuestSpec{Name: "g"})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := pl.Boot.Toolstacks[1]
	var berr error
	if err := pl.RunWorkload(60*sim.Second, func(p *sim.Proc) {
		_, berr = pl.Boot.Builder.Submit(p, builder.Request{
			Requester: ts1.Dom, Name: "evil-qemu", QemuFor: g.Dom,
		})
	}); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(berr, xtypes.ErrPerm) {
		t.Fatalf("foreign qemu build: %v", berr)
	}
}
