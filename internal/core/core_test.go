package core

import (
	"errors"
	"testing"

	"xoar/internal/guest"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/workload"
	"xoar/internal/xtypes"
)

func TestNewXoarPlatform(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	comps := pl.Components()
	names := map[string]bool{}
	for _, c := range comps {
		names[c.Name] = true
		if !c.Shard {
			t.Errorf("non-shard control component %s", c.Name)
		}
	}
	for _, want := range []string{"xenstore-logic", "xenstore-state", "console", "builder", "pciback", "netback", "blkback", "toolstack-0"} {
		if !names[want] {
			t.Errorf("missing component %s (have %v)", want, names)
		}
	}
}

func TestGuestLifecycleAndConsole(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	g, err := pl.CreateGuest(GuestSpec{Name: "web", Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteConsole("hello from dom" + "X"); err != nil {
		t.Fatal(err)
	}
	pl.Advance(sim.Second)
	if buf := g.ConsoleBuffer(); len(buf) != 1 {
		t.Fatalf("console buffer = %v", buf)
	}
	if err := pl.DestroyGuest(g); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.HV.Domain(g.Dom); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatal("guest survived destroy")
	}
}

func TestWorkloadHelpers(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	g, err := pl.CreateGuest(GuestSpec{Name: "bench", VCPUs: 2, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Fetch(64<<20, guest.SinkNull)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMBps() < 100 {
		t.Fatalf("fetch = %.1f MB/s", res.ThroughputMBps())
	}
	pm, err := g.Postmark(workload.PostmarkConfig{Files: 1000, Transactions: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if pm.OpsPerSec <= 0 {
		t.Fatal("postmark produced nothing")
	}
}

func TestRestartPolicyThroughCore(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.SetNetBackRestartPolicy(RestartPolicy{Interval: sim.Second}); err != nil {
		t.Fatal(err)
	}
	pl.Advance(5 * sim.Second)
	st, ok := pl.RestartStats(pl.Boot.NetBacks[0].Dom)
	if !ok || st.Restarts < 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("restart errors = %d", st.Errors)
	}
	// Re-tune to fast restarts; stats persist.
	if err := pl.SetNetBackRestartPolicy(RestartPolicy{Interval: sim.Second, Fast: true}); err != nil {
		t.Fatal(err)
	}
	pl.Advance(3 * sim.Second)
	st2, _ := pl.RestartStats(pl.Boot.NetBacks[0].Dom)
	if st2.Restarts <= st.Restarts {
		t.Fatal("policy change stopped restarts")
	}
	// Disable.
	if err := pl.SetNetBackRestartPolicy(RestartPolicy{}); err != nil {
		t.Fatal(err)
	}
	st3, _ := pl.RestartStats(pl.Boot.NetBacks[0].Dom)
	if _, managed := pl.RestartStats(pl.Boot.NetBacks[0].Dom); managed {
		t.Log("still managed after disable (stats retained):", st3)
	}
}

func TestRestartPolicyRefusedOnDom0(t *testing.T) {
	pl, err := New(MonolithicDom0, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.SetNetBackRestartPolicy(RestartPolicy{Interval: sim.Second}); !errors.Is(err, xtypes.ErrInvalid) {
		t.Fatalf("dom0 restart policy: %v", err)
	}
}

func TestAuditForensics(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	g1, err := pl.CreateGuest(GuestSpec{Name: "t1", Net: true})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := pl.CreateGuest(GuestSpec{Name: "t2", Net: true})
	if err != nil {
		t.Fatal(err)
	}
	nb := pl.Boot.NetBacks[0].Dom
	deps := pl.DependentsOf(nb, 0, pl.Now())
	if len(deps) != 2 {
		t.Fatalf("dependents = %v", deps)
	}
	// The log is tamper-evident.
	if pl.Log.Verify() != -1 {
		t.Fatal("fresh audit log corrupt")
	}
	_ = g1
	_ = g2
}

func TestSecurityReportThroughCore(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	g, err := pl.CreateGuest(GuestSpec{Name: "attacker", Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.SecurityReport(g.Dom)
	if len(rep.Findings) != 23 {
		t.Fatalf("findings = %d", len(rep.Findings))
	}
	tcb := pl.TCB()
	if tcb.SourceLoC != 8000 {
		t.Fatalf("tcb = %d", tcb.SourceLoC)
	}
}

func TestDelegateDriversPrivateCloud(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 1, Toolstacks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	// Toolstack 1 starts with nothing delegated: guest creation fails.
	if _, err := pl.CreateGuest(GuestSpec{Name: "p1", Net: true, Toolstack: 1}); err == nil {
		t.Fatal("undelegated toolstack created a networked guest")
	}
	if err := pl.DelegateDrivers(1); err != nil {
		t.Fatal(err)
	}
	g, err := pl.CreateGuest(GuestSpec{Name: "p1", Net: true, Toolstack: 1})
	if err != nil {
		t.Fatalf("after delegation: %v", err)
	}
	_ = g
}

func TestConstraintTagThroughCore(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if _, err := pl.CreateGuest(GuestSpec{Name: "a1", Net: true, ConstraintTag: "tenantA"}); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.CreateGuest(GuestSpec{Name: "b1", Net: true, ConstraintTag: "tenantB"}); !errors.Is(err, xtypes.ErrConstraint) {
		t.Fatalf("constraint not enforced: %v", err)
	}
	// Same tenant shares fine.
	if _, err := pl.CreateGuest(GuestSpec{Name: "a2", Net: true, ConstraintTag: "tenantA"}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() sim.Time {
		pl, err := New(XoarShards, Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		defer pl.Shutdown()
		g, err := pl.CreateGuest(GuestSpec{Name: "d", VCPUs: 2, Net: true, Disk: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Fetch(32<<20, guest.SinkDisk); err != nil {
			t.Fatal(err)
		}
		return pl.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestLiveMigrationBetweenClusterHosts(t *testing.T) {
	hosts, err := NewCluster(XoarShards, Config{Seed: 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := hosts[0], hosts[1]
	defer src.Shutdown() // shared env: one shutdown reaps everything

	g, err := src.CreateGuest(GuestSpec{Name: "roamer", VCPUs: 2, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	// Leave a fingerprint in guest memory and a working set large enough
	// that the pre-copy phase is meaningful.
	d, _ := src.HV.Domain(g.Dom)
	d.Mem.Write(42, []byte("state that must survive migration"))
	for i := 100; i < 30000; i++ {
		d.Mem.Write(xtypes.PFN(i), []byte{0xAB})
	}

	res, err := src.MigrateGuest(g, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Gone at the source; running at the destination.
	if _, err := src.HV.Domain(g.Dom); err == nil {
		t.Fatal("guest still on source")
	}
	nd, err := dst.HV.Domain(res.Guest.Dom)
	if err != nil {
		t.Fatal(err)
	}
	if nd.State != hv.StateRunning {
		t.Fatalf("dst state = %v", nd.State)
	}
	data, _ := nd.Mem.Read(42)
	if string(data) != "state that must survive migration" {
		t.Fatalf("memory fingerprint lost: %q", data)
	}
	// Devices re-wired on the destination: the guest can do I/O there.
	fr, err := res.Guest.Fetch(32<<20, guest.SinkDisk)
	if err != nil {
		t.Fatal(err)
	}
	if fr.ThroughputMBps() < 50 {
		t.Fatalf("post-migration I/O = %.1f MB/s", fr.ThroughputMBps())
	}
	// Pre-copy kept the blackout far below total time.
	if res.Stats.Downtime > 200*sim.Millisecond {
		t.Fatalf("downtime = %v", res.Stats.Downtime)
	}
	if res.Stats.TotalTime < res.Stats.Downtime*3 {
		t.Fatalf("total %v vs downtime %v: no pre-copy benefit", res.Stats.TotalTime, res.Stats.Downtime)
	}
	// Source shard capacity was released: a new guest fits.
	if _, err := src.CreateGuest(GuestSpec{Name: "replacement", Net: true, Disk: true}); err != nil {
		t.Fatalf("source resources leaked: %v", err)
	}
}

func TestMigrationAcrossUnrelatedPlatformsRefused(t *testing.T) {
	a, err := New(XoarShards, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown()
	b, err := New(XoarShards, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Shutdown()
	g, err := a.CreateGuest(GuestSpec{Name: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.MigrateGuest(g, b); !errors.Is(err, xtypes.ErrInvalid) {
		t.Fatalf("cross-simulation migration: %v", err)
	}
}

func TestMultiControllerHostGetsShardPerDevice(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 17, Machine: hw.MachineConfig{CPUs: 8, RAMMB: 8192, NICs: 2, Disks: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	// One driver shard per controller (Table 6.1's note).
	if len(pl.Boot.NetBacks) != 2 || len(pl.Boot.BlkBacks) != 2 {
		t.Fatalf("netbacks=%d blkbacks=%d", len(pl.Boot.NetBacks), len(pl.Boot.BlkBacks))
	}
	// Two tenants with conflicting constraints can now coexist: each locks
	// its own shard pair.
	if _, err := pl.CreateGuest(GuestSpec{Name: "a", Net: true, Disk: true, ConstraintTag: "A"}); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.CreateGuest(GuestSpec{Name: "b", Net: true, Disk: true, ConstraintTag: "B"}); err != nil {
		t.Fatalf("second tenant on second controller pair: %v", err)
	}
	// A third tenant has no free shard left.
	if _, err := pl.CreateGuest(GuestSpec{Name: "c", Net: true, ConstraintTag: "C"}); !errors.Is(err, xtypes.ErrConstraint) {
		t.Fatalf("third constrained tenant: %v", err)
	}
}

func TestMinimalConfiguration512MB(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 17, NoConsole: true, DestroyPCIBack: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	total := 0
	for _, c := range pl.Components() {
		total += c.MemMB
	}
	// The paper's minimal hosting configuration: 512MB of shards.
	if total != 512 {
		t.Fatalf("minimal config = %dMB, want 512", total)
	}
	// Still fully functional for headless guests.
	g, err := pl.CreateGuest(GuestSpec{Name: "headless", Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := g.Fetch(16<<20, guest.SinkDisk); err != nil || res.ThroughputMBps() < 50 {
		t.Fatalf("minimal-config I/O: %+v %v", res, err)
	}
	// Console writes fail gracefully.
	if err := g.WriteConsole("x"); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("console on minimal config: %v", err)
	}
}

func TestGuestSpecMultiQueue(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	g, err := pl.CreateGuest(GuestSpec{Name: "mq", VCPUs: 2, Net: true, Disk: true, NetQueues: 4, DiskQueues: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n := g.VM.Net.Queues(); n != 4 {
		t.Fatalf("net queues = %d", n)
	}
	if n := g.VM.Blk.Queues(); n != 2 {
		t.Fatalf("disk queues = %d", n)
	}
	var res workloadProbe
	done := false
	pl.Env.Spawn("probe", func(p *sim.Proc) {
		res.fetch = g.VM.Fetch(p, 8<<20, guest.SinkDisk)
		done = true
	})
	pl.Env.RunFor(120 * sim.Second)
	if !done {
		t.Fatal("fetch did not complete")
	}
	if res.fetch.Bytes != 8<<20 {
		t.Fatalf("fetched %d", res.fetch.Bytes)
	}
}

type workloadProbe struct{ fetch guest.FetchResult }
