package core

// System tests: whole-platform scenarios that combine density, microreboots,
// sharing, forensics, and recovery — the deployment shapes §3.4 describes.

import (
	"testing"

	"xoar/internal/guest"
	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// TestDenseDeployment packs many small guests on one host (§1: dense
// multiplexing is the economic point of virtualization) and runs I/O on all
// of them concurrently under a microreboot policy.
func TestDenseDeployment(t *testing.T) {
	pl, err := New(XoarShards, Config{
		Seed:    23,
		Machine: hw.MachineConfig{CPUs: 8, RAMMB: 16 * 1024, NICs: 1, Disks: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()

	const n = 12
	guests := make([]*Guest, 0, n)
	for i := 0; i < n; i++ {
		g, err := pl.CreateGuest(GuestSpec{
			Name: "tenant" + string(rune('a'+i)), MemMB: 256, Net: true, Disk: true,
		})
		if err != nil {
			t.Fatalf("guest %d: %v", i, err)
		}
		guests = append(guests, g)
	}
	if err := pl.SetNetBackRestartPolicy(RestartPolicy{Interval: 5 * sim.Second, Fast: true}); err != nil {
		t.Fatal(err)
	}

	// All twelve transfer concurrently; the NIC is shared, so per-guest
	// throughput divides, but everyone must finish.
	results := make([]guest.FetchResult, n)
	doneCh := 0
	for i, g := range guests {
		i, g := i, g
		pl.Env.Spawn("wget-"+g.Name, func(p *sim.Proc) {
			results[i] = g.VM.Fetch(p, 64<<20, guest.SinkNull)
			doneCh++
		})
	}
	for i := 0; i < 300 && doneCh < n; i++ {
		pl.Advance(sim.Second)
	}
	if doneCh != n {
		t.Fatalf("only %d/%d transfers finished", doneCh, n)
	}
	var total float64
	for i, r := range results {
		if r.Bytes < 64<<20 {
			t.Fatalf("guest %d incomplete: %d bytes", i, r.Bytes)
		}
		total += r.ThroughputMBps()
	}
	// Aggregate throughput still approaches line rate despite 12-way sharing
	// and periodic microreboots.
	if total < 60 {
		t.Fatalf("aggregate = %.1f MB/s", total)
	}

	// Same-page sharing across identically-booted tenants reclaims headroom.
	for _, g := range guests {
		d, _ := pl.HV.Domain(g.Dom)
		for pfn := 0; pfn < 2000; pfn++ {
			d.Mem.Write(xtypes.PFN(pfn), []byte("common-kernel-text"))
		}
	}
	st := pl.DedupScan()
	if st.SavedPages < 11*2000 {
		t.Fatalf("dedup saved %d pages across %d identical guests", st.SavedPages, n)
	}
}

// TestEndToEndIncidentScenario walks the public-cloud incident narrative:
// tenants run under restarts, a driver compromise is detected, forensics
// names the exposed tenants, the driver is rebuilt in place, and service
// continues — all on one platform instance.
func TestEndToEndIncidentScenario(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()

	a, err := pl.CreateGuest(GuestSpec{Name: "tenantA", VCPUs: 2, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pl.CreateGuest(GuestSpec{Name: "tenantB", VCPUs: 2, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	pl.SetNetBackRestartPolicy(RestartPolicy{Interval: 5 * sim.Second, Fast: true})
	if _, err := a.Fetch(128<<20, guest.SinkDisk); err != nil {
		t.Fatal(err)
	}
	// Let at least one microreboot cycle land in the audit trail.
	pl.Advance(6 * sim.Second)

	// Incident: NetBack is found compromised at time t1.
	nb := pl.Boot.NetBacks[0].Dom
	t1 := pl.Now()

	// 1. What could the attacker do from there? Probe it.
	probe := pl.ProbeCompromise(nb, b.Dom)
	if !probe.Clean() {
		t.Fatalf("compromised NetBack escalated: %v", probe.Obtained())
	}

	// 2. Who was exposed? Both tenants, per the audit log.
	exposed := pl.DependentsOf(nb, 0, t1)
	if len(exposed) != 2 {
		t.Fatalf("exposed = %v", exposed)
	}

	// 3. Containment analysis for the customer report.
	rep := pl.SecurityReport(a.Dom)
	if rep.ByOutcome[0] == 0 { // OutContained
		t.Fatal("no contained findings in the report")
	}

	// 4. Remediate: rebuild the driver in place with the patched release.
	newDom, err := pl.UpgradeNetBack(0)
	if err != nil {
		t.Fatal(err)
	}
	if newDom == nb {
		t.Fatal("driver not replaced")
	}

	// 5. Service resumed for everyone.
	for _, g := range []*Guest{a, b} {
		res, err := g.Fetch(32<<20, guest.SinkNull)
		if err != nil || res.ThroughputMBps() < 40 {
			t.Fatalf("%s post-incident: %+v %v", g.Name, res, err)
		}
	}

	// 6. The whole incident is in the tamper-evident log.
	if pl.Log.Verify() != -1 {
		t.Fatal("audit log corrupt")
	}
	if pl.Log.KindCount("rollback") == 0 || pl.Log.KindCount("destroy") == 0 {
		t.Fatal("incident not fully audited")
	}
}
