// Package core is the top of the Xoar stack: it assembles the hypervisor,
// hardware models, substrates, and control-plane components into a Platform
// with one of two profiles — the stock monolithic Dom0, or the paper's
// disaggregated shard architecture — and exposes the operations a platform
// operator performs: create and destroy guests, configure microreboot
// policies, constrain sharing, query the audit log, and run the security
// analysis.
//
// Everything here runs on a deterministic virtual clock; Advance and
// RunWorkload move simulated time.
package core

import (
	"fmt"

	"xoar/internal/audit"
	"xoar/internal/blkdrv"
	"xoar/internal/boot"
	"xoar/internal/guest"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/mm"
	"xoar/internal/netdrv"
	"xoar/internal/osimage"
	"xoar/internal/seceval"
	"xoar/internal/sim"
	"xoar/internal/snapshot"
	"xoar/internal/toolstack"
	"xoar/internal/xtypes"
)

// Profile selects the platform architecture.
type Profile uint8

const (
	// MonolithicDom0 is the stock Xen layout: one privileged control VM.
	MonolithicDom0 Profile = iota
	// XoarShards is the paper's architecture: the control VM broken into
	// isolated, least-privilege, restartable shards.
	XoarShards
)

func (p Profile) String() string {
	if p == MonolithicDom0 {
		return "monolithic-dom0"
	}
	return "xoar-shards"
}

// Config tunes platform assembly.
type Config struct {
	// Seed drives the deterministic simulation; equal seeds reproduce runs
	// exactly.
	Seed int64
	// Toolstacks is the number of management toolstacks (Xoar only).
	Toolstacks int
	// DestroyPCIBack removes PCIBack after boot (§5.3), shrinking the
	// steady-state set of privileged components.
	DestroyPCIBack bool
	// NoConsole omits the Console Manager (the paper's minimal hosting
	// configuration, §6.1.1).
	NoConsole bool
	// Machine overrides the modelled host; zero value selects the paper's
	// testbed. Hosts with several controllers get one driver shard each.
	Machine hw.MachineConfig
}

// RestartPolicy configures microreboots for a restartable component.
type RestartPolicy struct {
	// Interval between restarts; zero disables the timer.
	Interval sim.Duration
	// Fast selects recovery-box restoration over XenStore renegotiation.
	Fast bool
}

// Platform is a booted virtualization platform.
type Platform struct {
	Profile Profile
	Env     *sim.Env
	HV      *hv.Hypervisor
	Boot    *boot.Platform
	Log     *audit.Log

	engine *snapshot.Engine
	guests map[xtypes.DomID]*Guest
}

// Guest is a running guest VM with its workload endpoints attached.
type Guest struct {
	Name string
	Dom  xtypes.DomID
	VM   *guest.VM
	rec  *toolstack.Guest
	pl   *Platform
}

// New boots a platform with the given profile.
func New(profile Profile, cfg Config) (*Platform, error) {
	return newPlatform(sim.NewEnv(cfg.Seed), profile, cfg)
}

// NewCluster boots n platforms of the same profile sharing one virtual
// clock, as hosts on one management network — the setup live migration
// needs. Hosts boot sequentially on the shared clock.
func NewCluster(profile Profile, cfg Config, n int) ([]*Platform, error) {
	env := sim.NewEnv(cfg.Seed)
	out := make([]*Platform, 0, n)
	for i := 0; i < n; i++ {
		pl, err := newPlatform(env, profile, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, pl)
	}
	return out, nil
}

func newPlatform(env *sim.Env, profile Profile, cfg Config) (*Platform, error) {
	mcfg := cfg.Machine
	if mcfg == (hw.MachineConfig{}) {
		mcfg = hw.DefaultMachineConfig()
	}
	h := hv.New(env, hw.NewMachineWith(env, mcfg))
	log := audit.NewLog()
	h.Sink = func(e hv.Event) { log.Append(e.Time, e.Kind, e.Dom, e.Arg) }

	pl := &Platform{Profile: profile, Env: env, HV: h, Log: log, guests: make(map[xtypes.DomID]*Guest)}
	var bootErr error
	done := false
	env.Spawn("boot", func(p *sim.Proc) {
		opts := boot.Options{Toolstacks: cfg.Toolstacks, DestroyPCIBack: cfg.DestroyPCIBack, NoConsole: cfg.NoConsole}
		if profile == MonolithicDom0 {
			pl.Boot, bootErr = boot.BootDom0(p, h, osimage.DefaultCatalog(), opts)
		} else {
			pl.Boot, bootErr = boot.BootXoar(p, h, osimage.DefaultCatalog(), opts)
		}
		done = true
	})
	for i := 0; i < 300 && !done; i++ {
		env.RunFor(sim.Second)
	}
	if bootErr != nil {
		return nil, bootErr
	}
	if !done {
		return nil, fmt.Errorf("core: boot did not complete")
	}
	pl.engine = snapshot.NewEngine(h, pl.Boot.BuilderDom)
	return pl, nil
}

// GuestSpec describes a guest to create.
type GuestSpec struct {
	Name string
	// Image names a known-good catalog image; empty selects the PV guest.
	Image string
	// CustomKernel boots a user kernel through the bootloader (§5.2).
	CustomKernel bool
	MemMB        int
	VCPUs        int
	Net          bool
	Disk         bool
	DiskMB       int
	// NetQueues/DiskQueues give the guest's devices N rings each (0 or 1 is
	// the single-ring layout); vifs hash flows across rings, vbds stripe.
	NetQueues  int
	DiskQueues int
	// ConstraintTag restricts which guests may share this guest's shards
	// (§3.2.1).
	ConstraintTag string
	// Toolstack indexes the managing toolstack (multi-toolstack private
	// clouds, §3.4.2).
	Toolstack int
	// HVM runs an unmodified guest behind a dedicated QemuVM device model.
	HVM bool
}

// CreateGuest builds and wires a guest through the platform's toolstack.
func (pl *Platform) CreateGuest(spec GuestSpec) (*Guest, error) {
	if spec.Image == "" {
		spec.Image = osimage.ImgGuestPV
		if spec.HVM {
			spec.Image = osimage.ImgGuestHVM
		}
	}
	if spec.Toolstack < 0 || spec.Toolstack >= len(pl.Boot.Toolstacks) {
		return nil, fmt.Errorf("core: toolstack %d: %w", spec.Toolstack, xtypes.ErrNotFound)
	}
	ts := pl.Boot.Toolstacks[spec.Toolstack]
	var rec *toolstack.Guest
	var err error
	done := false
	pl.Env.Spawn("create-"+spec.Name, func(p *sim.Proc) {
		rec, err = ts.CreateVM(p, toolstack.GuestConfig{
			Name: spec.Name, Image: spec.Image, CustomKernel: spec.CustomKernel,
			MemMB: spec.MemMB, VCPUs: spec.VCPUs, DiskMB: spec.DiskMB,
			Net: spec.Net, Disk: spec.Disk, ConstraintTag: spec.ConstraintTag,
			NetQueues: spec.NetQueues, DiskQueues: spec.DiskQueues,
			HVM: spec.HVM,
		})
		done = true
	})
	for i := 0; i < 120 && !done; i++ {
		pl.Env.RunFor(sim.Second)
	}
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("core: guest creation did not complete")
	}
	g := &Guest{
		Name: spec.Name,
		Dom:  rec.Dom,
		VM:   &guest.VM{H: pl.HV, Dom: rec.Dom, Net: rec.Net, Blk: rec.Blk, NetB: rec.NetB, BlkB: rec.BlkB},
		rec:  rec,
		pl:   pl,
	}
	pl.guests[rec.Dom] = g
	return g, nil
}

// DestroyGuest tears a guest down through its managing toolstack.
func (pl *Platform) DestroyGuest(g *Guest) error {
	var err error
	done := false
	pl.Env.Spawn("destroy-"+g.Name, func(p *sim.Proc) {
		for _, ts := range pl.Boot.Toolstacks {
			if err = ts.DestroyVM(p, g.Dom); err == nil {
				break
			}
		}
		done = true
	})
	for i := 0; i < 30 && !done; i++ {
		pl.Env.RunFor(sim.Second)
	}
	if !done {
		return fmt.Errorf("core: destroy did not complete")
	}
	if err == nil {
		delete(pl.guests, g.Dom)
	}
	return err
}

// SetNetBackRestartPolicy configures microreboots for every NetBack.
func (pl *Platform) SetNetBackRestartPolicy(policy RestartPolicy) error {
	for _, nb := range pl.Boot.NetBacks {
		if err := pl.manage(nb.AsRestartable(), policy); err != nil {
			return err
		}
	}
	return nil
}

// SetBlkBackRestartPolicy configures microreboots for every BlkBack.
func (pl *Platform) SetBlkBackRestartPolicy(policy RestartPolicy) error {
	for _, bb := range pl.Boot.BlkBacks {
		if err := pl.manage(bb.AsRestartable(), policy); err != nil {
			return err
		}
	}
	return nil
}

func (pl *Platform) manage(c snapshot.Restartable, policy RestartPolicy) error {
	if pl.Profile == MonolithicDom0 {
		return fmt.Errorf("core: microreboots need the shard architecture: %w", xtypes.ErrInvalid)
	}
	if _, ok := pl.engine.Stats(c.Dom()); ok {
		if policy.Interval <= 0 {
			pl.engine.Unmanage(c.Dom())
			return nil
		}
		return pl.engine.SetPolicy(c.Dom(), snapshot.Policy{
			Kind: snapshot.PolicyTimer, Interval: policy.Interval, Fast: policy.Fast,
		})
	}
	if policy.Interval <= 0 {
		return nil
	}
	return pl.engine.Manage(c, snapshot.Policy{
		Kind: snapshot.PolicyTimer, Interval: policy.Interval, Fast: policy.Fast,
	})
}

// RestartStats reports microreboot accounting for a component domain.
func (pl *Platform) RestartStats(dom xtypes.DomID) (snapshot.Stats, bool) {
	return pl.engine.Stats(dom)
}

// Advance runs the virtual clock forward by d.
func (pl *Platform) Advance(d sim.Duration) { pl.Env.RunFor(d) }

// Now reports the current virtual time.
func (pl *Platform) Now() sim.Time { return pl.Env.Now() }

// RunWorkload executes fn inside a sim process and advances time until it
// returns (bounded by limit).
func (pl *Platform) RunWorkload(limit sim.Duration, fn func(p *sim.Proc)) error {
	finished := false
	pl.Env.Spawn("workload", func(p *sim.Proc) {
		fn(p)
		finished = true
	})
	deadline := pl.Env.Now().Add(limit)
	for !finished && pl.Env.Now() < deadline {
		pl.Env.RunFor(sim.Second)
	}
	if !finished {
		return fmt.Errorf("core: workload exceeded %v", limit)
	}
	return nil
}

// Shutdown reaps every simulation process. The platform is unusable after.
func (pl *Platform) Shutdown() { pl.Env.Shutdown() }

// Components describes the platform's live control-plane domains.
func (pl *Platform) Components() []ComponentInfo {
	var out []ComponentInfo
	for _, d := range pl.HV.Domains() {
		if _, isGuest := pl.guests[d.ID]; isGuest {
			continue
		}
		out = append(out, ComponentInfo{
			Dom:        d.ID,
			Name:       d.Name,
			Image:      d.Cfg.OSImage,
			MemMB:      d.Mem.MaxMB(),
			Shard:      d.IsShard(),
			Privileged: d.Priv().ControlAll || len(d.Priv().Hypercalls) > 0,
			Clients:    d.Clients(),
		})
	}
	return out
}

// ComponentInfo is one control-plane domain's inventory row.
type ComponentInfo struct {
	Dom        xtypes.DomID
	Name       string
	Image      string
	MemMB      int
	Shard      bool
	Privileged bool
	Clients    []xtypes.DomID
}

// SecurityReport runs the §6.2.1 containment analysis with attacker as the
// compromised tenant.
func (pl *Platform) SecurityReport(attacker xtypes.DomID) seceval.Report {
	an := seceval.NewAnalyzer(pl.Boot, seceval.Options{
		DeprivilegedGuests: true,
		Attacker:           attacker,
		QemuOf:             xtypes.DomIDNone,
	})
	return an.Run()
}

// TCB computes the platform's trusted computing base (§6.2).
func (pl *Platform) TCB() seceval.TCBReport { return seceval.TCB(pl.Boot) }

// DependentsOf answers the §3.2.2 forensic query: which guests depended on
// the given shard during [from, to].
func (pl *Platform) DependentsOf(shard xtypes.DomID, from, to sim.Time) []xtypes.DomID {
	return pl.Log.DependentsOf(shard, from, to)
}

// DelegateDrivers hands the platform's driver shards to the toolstack at
// index i — the private-cloud scenario of §3.4.2, where each user receives a
// personal toolstack with its shards' administrative privileges delegated to
// it. The Builder performs the delegation (it administers the shards).
func (pl *Platform) DelegateDrivers(i int) error {
	if pl.Profile == MonolithicDom0 {
		return fmt.Errorf("core: delegation needs the shard architecture: %w", xtypes.ErrInvalid)
	}
	if i < 0 || i >= len(pl.Boot.Toolstacks) {
		return fmt.Errorf("core: toolstack %d: %w", i, xtypes.ErrNotFound)
	}
	ts := pl.Boot.Toolstacks[i]
	for _, nb := range pl.Boot.NetBacks {
		if err := pl.HV.Delegate(pl.Boot.BuilderDom, nb.Dom, ts.Dom); err != nil {
			return err
		}
		ts.NetBacks = appendUniqueNet(ts.NetBacks, nb)
	}
	for _, bb := range pl.Boot.BlkBacks {
		if err := pl.HV.Delegate(pl.Boot.BuilderDom, bb.Dom, ts.Dom); err != nil {
			return err
		}
		ts.BlkBacks = appendUniqueBlk(ts.BlkBacks, bb)
	}
	return nil
}

func appendUniqueNet(list []*netdrv.Backend, b *netdrv.Backend) []*netdrv.Backend {
	for _, x := range list {
		if x == b {
			return list
		}
	}
	return append(list, b)
}

func appendUniqueBlk(list []*blkdrv.Backend, b *blkdrv.Backend) []*blkdrv.Backend {
	for _, x := range list {
		if x == b {
			return list
		}
	}
	return append(list, b)
}

// DedupScan runs one same-page-sharing pass over all domains (the memory
// density mechanism the paper's introduction motivates) and returns its
// statistics. EffectiveFreeMB reflects the reclaimed headroom afterwards.
func (pl *Platform) DedupScan() mm.DedupStats { return pl.HV.MM.Dedup() }

// EffectiveFreeMB is free machine memory including frames reclaimed by
// same-page sharing.
func (pl *Platform) EffectiveFreeMB() int { return pl.HV.MM.EffectiveFreeMB() }

// ProbeCompromise assumes component is fully attacker-controlled and
// dynamically attempts hostile operations against the live hypervisor (the
// §6.2 argument, exercised rather than asserted).
func (pl *Platform) ProbeCompromise(component, victim xtypes.DomID) seceval.CapabilityProbe {
	return seceval.Probe(pl.Boot, component, victim)
}
