package core

import (
	"fmt"

	"xoar/internal/migrate"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
	"xoar/internal/xtypes"
)

// MigrationResult reports a completed live migration.
type MigrationResult struct {
	// Guest is the adopted guest record on the destination platform.
	Guest *Guest
	// Stats are the pre-copy metrics (rounds, downtime, totals).
	Stats migrate.Result
}

// MigrateGuest live-migrates g to the destination platform, which must share
// this platform's virtual clock (boot both through NewCluster). The source
// toolstack orchestrates the pre-copy — the hypervisor audits its
// foreign-mapping rights over exactly this guest — and the destination's
// Builder constructs the receiving domain. Afterwards the destination
// toolstack adopts the guest and re-wires its devices through its own driver
// shards, exactly as Xen re-attaches vifs and vbds after a migration.
func (pl *Platform) MigrateGuest(g *Guest, dst *Platform) (*MigrationResult, error) {
	if pl.Env != dst.Env {
		return nil, fmt.Errorf("core: migrate across unrelated simulations (use NewCluster): %w", xtypes.ErrInvalid)
	}
	if _, ok := pl.guests[g.Dom]; !ok {
		return nil, fmt.Errorf("core: %v not managed here: %w", g.Dom, xtypes.ErrNotFound)
	}
	srcTS := pl.Boot.Toolstacks[0]
	dstTS := dst.Boot.Toolstacks[0]

	var res MigrationResult
	var err error
	done := false
	pl.Env.Spawn("migrate-"+g.Name, func(p *sim.Proc) {
		defer func() { done = true }()
		var newDom xtypes.DomID
		newDom, res.Stats, err = migrate.LiveMigrate(
			p, pl.HV, srcTS.Dom, g.Dom,
			dst.HV, dst.Boot.BuilderDom,
			migrate.DefaultLink(), migrate.DefaultOptions())
		if err != nil {
			return
		}
		// Source-side bookkeeping: the toolstack's record, the shard links
		// and the disk image go through the normal detach path (the domain
		// itself is already gone).
		srcTS.Forget(g.Dom)
		delete(pl.guests, g.Dom)

		// Destination: hand the domain to the toolstack and re-wire devices.
		if err = dst.HV.SetParentTool(dst.Boot.BuilderDom, newDom, dstTS.Dom); err != nil {
			return
		}
		var rec *toolstack.Guest
		rec, err = dstTS.Adopt(p, newDom, toolstack.GuestConfig{
			Name: g.Name, MemMB: g.rec.Cfg.MemMB,
			Net: g.rec.Cfg.Net, Disk: g.rec.Cfg.Disk,
			DiskMB: g.rec.Cfg.DiskMB, ConstraintTag: g.rec.Cfg.ConstraintTag,
		})
		if err != nil {
			return
		}
		ng := &Guest{
			Name: g.Name,
			Dom:  newDom,
			VM:   newVMFromRecord(dst.HV, rec),
			rec:  rec,
			pl:   dst,
		}
		dst.guests[newDom] = ng
		res.Guest = ng
	})
	for i := 0; i < 600 && !done; i++ {
		pl.Env.RunFor(sim.Second)
	}
	if !done {
		return nil, fmt.Errorf("core: migration did not complete")
	}
	if err != nil {
		return nil, err
	}
	return &res, nil
}
