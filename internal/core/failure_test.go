package core

// Failure-injection tests: the availability half of the paper's argument.
// Killing a driver domain on Xoar is a contained event — the host and every
// guest survive, and the platform rebuilds the driver in place. Killing the
// monolithic control VM takes the whole machine with it (§5.8).

import (
	"errors"
	"testing"

	"xoar/internal/guest"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

func TestNetBackCrashIsContained(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	g, err := pl.CreateGuest(GuestSpec{Name: "app", Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}

	// The driver domain dies unexpectedly (a driver bug, say).
	nbDom := pl.Boot.NetBacks[0].Dom
	if err := pl.HV.DestroyDomain(hv0SystemCaller(), nbDom, "driver crash"); err != nil {
		t.Fatal(err)
	}
	pl.Advance(sim.Second)

	// The host did not crash, the guest is alive, and its disk still works:
	// the blast radius is exactly the network service.
	if pl.HV.CrashedHost {
		t.Fatal("netback crash took down the host")
	}
	if _, err := pl.HV.Domain(g.Dom); err != nil {
		t.Fatal("guest died with the driver domain")
	}
	if err := pl.RunWorkload(60*sim.Second, func(p *sim.Proc) {
		if werr := g.VM.Blk.Write(p, 1<<20, true); werr != nil {
			t.Errorf("disk I/O after netback crash: %v", werr)
		}
	}); err != nil {
		t.Fatal(err)
	}

	// Recovery: rebuild the driver in place and traffic resumes.
	if _, err := pl.UpgradeNetBack(0); err != nil {
		t.Fatalf("rebuild after crash: %v", err)
	}
	res, err := g.Fetch(16<<20, guest.SinkNull)
	if err != nil || res.ThroughputMBps() < 50 {
		t.Fatalf("post-recovery fetch: %+v, %v", res, err)
	}
}

func TestDom0CrashTakesTheHost(t *testing.T) {
	pl, err := New(MonolithicDom0, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.HV.DestroyDomain(hv0SystemCaller(), pl.Boot.Dom0, "kernel panic"); err != nil {
		t.Fatal(err)
	}
	if !pl.HV.CrashedHost {
		t.Fatal("dom0 death did not crash the host — stock Xen semantics lost")
	}
}

func TestGuestDestroyedMidTransfer(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	g, err := pl.CreateGuest(GuestSpec{Name: "victim", VCPUs: 2, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	// Start a long transfer, then destroy the guest while it runs.
	pl.Env.Spawn("wget", func(p *sim.Proc) {
		g.VM.Fetch(p, 1<<30, guest.SinkDisk)
	})
	pl.Advance(2 * sim.Second)
	if err := pl.DestroyGuest(g); err != nil {
		t.Fatalf("destroy mid-transfer: %v", err)
	}
	pl.Advance(5 * sim.Second)
	// The platform is intact: backends serve a fresh guest immediately.
	if pl.HV.CrashedHost {
		t.Fatal("host crashed")
	}
	g2, err := pl.CreateGuest(GuestSpec{Name: "next", VCPUs: 2, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := g2.Fetch(16<<20, guest.SinkNull); err != nil || res.ThroughputMBps() < 50 {
		t.Fatalf("fresh guest after mid-transfer destroy: %+v, %v", res, err)
	}
}

func TestXenStoreLogicRestartUnderPlatformLoad(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	before := pl.Boot.XenStoreLogic.Restarts()
	// Guest creation performs dozens of XenStore mutations; the per-request
	// policy microreboots the Logic throughout, invisibly.
	if _, err := pl.CreateGuest(GuestSpec{Name: "g", Net: true, Disk: true}); err != nil {
		t.Fatal(err)
	}
	if pl.Boot.XenStoreLogic.Restarts() <= before {
		t.Fatal("per-request XenStore-Logic restarts not active during operation")
	}
}

func TestCrossTenantIVCBlockedEvenAfterCompromiseOfToolstackCalls(t *testing.T) {
	// A compromised guest attempting direct IVC to another guest — the raw
	// attack the shard policy exists to stop — fails at the hypervisor.
	pl, err := New(XoarShards, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	a, err := pl.CreateGuest(GuestSpec{Name: "a", Net: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pl.CreateGuest(GuestSpec{Name: "b", Net: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.HV.Grant(a.Dom, b.Dom, 0, false); !errors.Is(err, xtypes.ErrNotShard) {
		t.Fatalf("guest-to-guest grant: %v", err)
	}
	if _, err := pl.HV.EvtchnAllocUnbound(a.Dom, b.Dom); !errors.Is(err, xtypes.ErrNotShard) {
		t.Fatalf("guest-to-guest evtchn: %v", err)
	}
}

// hv0SystemCaller keeps the tests readable without importing hv just for the
// constant.
func hv0SystemCaller() xtypes.DomID { return xtypes.DomID(0xFFFFFFF0) }
