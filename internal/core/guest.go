package core

import (
	"fmt"

	"xoar/internal/guest"
	"xoar/internal/hv"
	"xoar/internal/qemudm"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
	"xoar/internal/workload"
	"xoar/internal/xtypes"
)

// newVMFromRecord wires a workload endpoint from a toolstack record.
func newVMFromRecord(h *hv.Hypervisor, rec *toolstack.Guest) *guest.VM {
	return &guest.VM{H: h, Dom: rec.Dom, Net: rec.Net, Blk: rec.Blk, NetB: rec.NetB, BlkB: rec.BlkB}
}

// Fetch downloads bytes from the LAN peer into the guest (wget), advancing
// virtual time until the transfer completes.
func (g *Guest) Fetch(bytes int64, sink guest.Sink) (guest.FetchResult, error) {
	var res guest.FetchResult
	err := g.pl.RunWorkload(6000*sim.Second, func(p *sim.Proc) {
		res = g.VM.Fetch(p, bytes, sink)
	})
	return res, err
}

// Postmark runs the Postmark transaction benchmark on the guest's disk.
func (g *Guest) Postmark(cfg workload.PostmarkConfig) (workload.PostmarkResult, error) {
	var res workload.PostmarkResult
	var werr error
	err := g.pl.RunWorkload(6000*sim.Second, func(p *sim.Proc) {
		res, werr = workload.Postmark(p, g.VM, cfg)
	})
	if err == nil {
		err = werr
	}
	return res, err
}

// KernelBuild compiles a kernel tree inside the guest.
func (g *Guest) KernelBuild(cfg workload.BuildConfig) (workload.BuildResult, error) {
	var res workload.BuildResult
	var werr error
	err := g.pl.RunWorkload(6000*sim.Second, func(p *sim.Proc) {
		res, werr = workload.KernelBuild(p, g.VM, cfg)
	})
	if err == nil {
		err = werr
	}
	return res, err
}

// ServeHTTPBench starts a web server in the guest and drives the Apache
// benchmark against it from LAN clients.
func (g *Guest) ServeHTTPBench(requests, concurrency, pageBytes int) (guest.HTTPBenchResult, error) {
	var res guest.HTTPBenchResult
	err := g.pl.RunWorkload(6000*sim.Second, func(p *sim.Proc) {
		srv := g.VM.StartHTTPServer(pageBytes)
		defer srv.Stop()
		res = g.VM.RunHTTPBench(p, requests, concurrency, pageBytes)
	})
	return res, err
}

// WriteConsole emits a line on the guest's virtual console, observable in
// the Console Manager's buffer and the physical serial log.
func (g *Guest) WriteConsole(line string) error {
	if g.pl.Boot.Console == nil {
		return fmt.Errorf("core: platform booted without a Console Manager: %w", xtypes.ErrNotFound)
	}
	return g.pl.Boot.Console.GuestWrite(g.Dom, line)
}

// ConsoleBuffer returns the guest's captured console output.
func (g *Guest) ConsoleBuffer() []string {
	if g.pl.Boot.Console == nil {
		return nil
	}
	return g.pl.Boot.Console.Buffer(g.Dom)
}

// Qemu returns the guest's device model (nil for PV guests).
func (g *Guest) Qemu() *qemudm.QemuVM { return g.rec.Qemu }

// EmulatedDiskWrite performs an HVM guest's emulated disk write: the QemuVM
// traps the I/O, charges emulation cost, DMA-maps the guest, and forwards
// through its PV frontend.
func (g *Guest) EmulatedDiskWrite(bytes int, sequential bool) error {
	q := g.rec.Qemu
	if q == nil {
		return fmt.Errorf("core: %s is not an HVM guest: %w", g.Name, xtypes.ErrInvalid)
	}
	var werr error
	err := g.pl.RunWorkload(600*sim.Second, func(p *sim.Proc) {
		werr = q.DiskWrite(p, bytes, sequential)
	})
	if err == nil {
		err = werr
	}
	return err
}
