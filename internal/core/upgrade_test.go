package core

import (
	"errors"
	"testing"

	"xoar/internal/guest"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

func TestInPlaceDriverUpgrade(t *testing.T) {
	pl, err := New(XoarShards, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	g, err := pl.CreateGuest(GuestSpec{Name: "app", VCPUs: 2, Net: true, Disk: true})
	if err != nil {
		t.Fatal(err)
	}
	// Traffic works on the old driver.
	if res, err := g.Fetch(16<<20, guest.SinkNull); err != nil || res.ThroughputMBps() < 50 {
		t.Fatalf("pre-upgrade fetch: %v %v", res, err)
	}

	oldDom := pl.Boot.NetBacks[0].Dom
	newDom, err := pl.UpgradeNetBack(0)
	if err != nil {
		t.Fatal(err)
	}
	if newDom == oldDom {
		t.Fatal("upgrade reused the old domain")
	}
	// The old shard is gone; the host and every guest survived.
	if _, err := pl.HV.Domain(oldDom); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatal("old netback survived")
	}
	if pl.HV.CrashedHost {
		t.Fatal("upgrade crashed the host")
	}
	if _, err := pl.HV.Domain(g.Dom); err != nil {
		t.Fatal("guest harmed by driver upgrade")
	}
	// The NIC moved to the new shard.
	if got := pl.HV.Machine.Bus.AssignedTo(pl.Boot.NetBacks[0].NIC.Addr()); got != newDom {
		t.Fatalf("NIC assigned to %v, want %v", got, newDom)
	}
	// Traffic flows through the new driver.
	res, err := g.Fetch(32<<20, guest.SinkNull)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMBps() < 50 {
		t.Fatalf("post-upgrade fetch = %.1f MB/s", res.ThroughputMBps())
	}
	// The audit log recorded the whole swap for later forensics.
	if got := pl.Log.KindCount("destroy"); got < 1 {
		t.Fatal("upgrade not audited")
	}
	// The new shard can immediately go under a microreboot policy.
	if err := pl.SetNetBackRestartPolicy(RestartPolicy{Interval: sim.Second}); err != nil {
		t.Fatal(err)
	}
}
