package core

import (
	"errors"
	"fmt"

	"xoar/internal/builder"
	"xoar/internal/hv"
	"xoar/internal/netdrv"
	"xoar/internal/osimage"
	"xoar/internal/sim"
	"xoar/internal/toolstack"
	"xoar/internal/xtypes"
)

// UpgradeNetBack performs an in-place driver upgrade (§6.2): the old NetBack
// shard is destroyed, the Builder instantiates a fresh one — the new driver
// release — which takes over the NIC, and every guest's vif is renegotiated
// against the new backend. Guests observe a disconnect/reconnect, the same
// recovery path microreboots exercise; nothing else on the host is
// disturbed. Returns the new shard's domain ID.
//
// This is the scenario the paper contrasts with a monolithic control VM,
// where "buggy, outdated and vulnerable device drivers often continue to be
// used because of the downtime and costs associated with upgrading a single
// driver".
func (pl *Platform) UpgradeNetBack(index int) (xtypes.DomID, error) {
	if pl.Profile == MonolithicDom0 {
		return xtypes.DomIDNone, fmt.Errorf("core: driver upgrade needs the shard architecture: %w", xtypes.ErrInvalid)
	}
	if index < 0 || index >= len(pl.Boot.NetBacks) {
		return xtypes.DomIDNone, fmt.Errorf("core: netback %d: %w", index, xtypes.ErrNotFound)
	}
	old := pl.Boot.NetBacks[index]
	nic := old.NIC
	oldDom := old.Dom

	// Collect the guests currently wired to this backend so we can
	// reattach them afterwards.
	var clients []*Guest
	for _, g := range pl.guests {
		if g.rec.NetB == old {
			clients = append(clients, g)
		}
	}

	// Any restart policy on the old shard dies with it.
	pl.engine.Unmanage(oldDom)

	var newDom xtypes.DomID
	var err error
	done := false
	pl.Env.Spawn("upgrade-netback", func(p *sim.Proc) {
		defer func() { done = true }()
		// Tear the old shard down: vifs break, the NIC is released.
		for _, g := range clients {
			old.RemoveVif(g.Dom)
		}
		// The old shard may already be dead — the crash-recovery case; an
		// upgrade then degenerates to a rebuild.
		if err = pl.HV.DestroyDomain(pl.Boot.BuilderDom, oldDom, "driver upgrade"); err != nil {
			if !errors.Is(err, xtypes.ErrNoDomain) {
				return
			}
			err = nil
		}
		// Build the replacement with the same privileges.
		newDom, err = pl.Boot.Builder.BuildDirect(p, builder.Request{
			Requester: pl.Boot.BuilderDom,
			Name:      "netback",
			Image:     osimage.ImgNetBack,
			Shard:     true,
			Privileges: hv.Assignment{
				PCIDevices: []xtypes.PCIAddr{nic.Addr()},
				Hypercalls: []xtypes.Hypercall{xtypes.HyperVMSnapshot},
			},
		})
		if err != nil {
			return
		}
		nb := netdrv.NewBackend(pl.HV, newDom, nic, pl.Boot.XenStoreLogic.Connect(newDom, false))
		nb.Start(p) // NIC hardware stays initialized: this is quick
		pl.HV.VMSnapshot(newDom)
		pl.Boot.NetBacks[index] = nb

		// Every toolstack that held the old shard gets the new one; their
		// clients relink and reconnect.
		for _, ts := range pl.Boot.Toolstacks {
			for i, b := range ts.NetBacks {
				if b == old {
					ts.NetBacks[i] = nb
				}
			}
		}
		for _, g := range clients {
			ts := pl.Boot.Toolstacks[0]
			for _, cand := range pl.Boot.Toolstacks {
				if tsManages(cand, g.Dom) {
					ts = cand
					break
				}
			}
			if err = pl.HV.Delegate(pl.Boot.BuilderDom, newDom, ts.Dom); err != nil {
				return
			}
			if err = pl.HV.LinkShardClient(ts.Dom, newDom, g.Dom); err != nil {
				return
			}
			nb.CreateVif(g.Dom)
			g.rec.NetB = nb
			g.VM.NetB = nb
			fe := netdrv.NewFrontend(pl.HV, g.Dom, pl.Boot.XenStoreLogic.Connect(g.Dom, false))
			if err = fe.Connect(p, nb); err != nil {
				return
			}
			g.rec.Net = fe
			g.VM.Net = fe
		}
	})
	for i := 0; i < 120 && !done; i++ {
		pl.Env.RunFor(sim.Second)
	}
	if !done {
		return xtypes.DomIDNone, fmt.Errorf("core: upgrade did not complete")
	}
	if err != nil {
		return xtypes.DomIDNone, err
	}
	return newDom, nil
}

// tsManages reports whether ts manages dom.
func tsManages(ts *toolstack.Toolstack, dom xtypes.DomID) bool {
	for _, g := range ts.Guests() {
		if g.Dom == dom {
			return true
		}
	}
	return false
}
