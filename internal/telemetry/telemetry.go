// Package telemetry is the platform-wide observability layer: a
// zero-dependency metrics registry (counters, gauges, fixed-bucket
// histograms with quantile summaries) plus a span tracer driven by the
// simulated clock (span.go).
//
// Design constraints, in order:
//
//  1. Disabled must be free. Every method on every type is safe on a nil
//     receiver and returns immediately, so instrumented components hold
//     pre-resolved handles (nil when telemetry is off) and pay one nil
//     check per observation — no map lookups, no allocation.
//  2. Exact under concurrency. Counters are atomic; gauges and histograms
//     are mutex-protected, so counts and sums are exact even when a real
//     goroutine hammers a histogram while the simulation's serve loops
//     observe into it (see the -race tests).
//  3. Bounded cardinality. Metrics are keyed by name plus a small sorted
//     label set; labels carry component or operation classes, never
//     per-domain IDs (DESIGN.md §8 has the naming rules).
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Values must come from a small fixed set
// (shard class, operation kind, direction) — never unbounded identifiers.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label at an instrumentation site.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricID renders name plus sorted labels into the canonical registry key,
// e.g. `restart_rollback_ms{class=netback}`. Sorting makes the ID
// independent of the label order at the call site.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry owns every metric and the span tracer. The zero value is not
// usable; call New. A nil *Registry is the disabled layer: all lookups
// return nil handles whose methods no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	tracer     *Tracer
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		tracer:     NewTracer(),
	}
}

// Counter returns the counter for name+labels, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[id]
	if !ok {
		c = &Counter{}
		r.counters[id] = c
	}
	return c
}

// Gauge returns the gauge for name+labels, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[id]
	if !ok {
		g = &Gauge{}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket upper bounds on first use (later calls reuse the existing
// buckets and ignore the argument). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[id]
	if !ok {
		h = newHistogram(buckets)
		r.histograms[id] = h
	}
	return h
}

// Counter is a monotonically increasing integer. Atomic, so it stays exact
// when incremented from real goroutines alongside the simulation.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//xoarlint:hot
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (no-op on nil). Driver pumps count notifies per batch through
// here, so the disabled path (nil receiver) and the enabled path must both
// stay allocation-free.
//
//xoarlint:hot
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value that can move both ways.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value (no-op on nil).
//
//xoarlint:hot
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the value by d (no-op on nil).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed buckets and keeps exact
// count/sum/min/max. Quantiles are estimated by linear interpolation
// inside the owning bucket, clamped to the observed [min, max].
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1
	count  uint64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value (no-op on nil). Per-descriptor RTTs flow through
// here on every pump wakeup; bucket search and the exact moments are all
// in-place, so observation costs no allocation whether or not telemetry is
// enabled.
//
//xoarlint:hot
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the exact number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the exact sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-th quantile (0 <= q <= 1). Returns 0 when the
// histogram is nil or empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			// Interpolate within bucket i between its lower and upper
			// bound, clamped to the observed extremes.
			lo := h.min
			if i > 0 {
				lo = math.Max(lo, h.bounds[i-1])
			}
			hi := h.max
			if i < len(h.bounds) {
				hi = math.Min(hi, h.bounds[i])
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.max
}

// stats returns a consistent (count, sum, min, max, p50, p95, p99) tuple
// under one lock acquisition, for snapshots.
func (h *Histogram) stats() (count uint64, sum, min, max, p50, p95, p99 float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0, 0, 0, 0, 0, 0, 0
	}
	return h.count, h.sum, h.min, h.max,
		h.quantileLocked(0.50), h.quantileLocked(0.95), h.quantileLocked(0.99)
}

// Shared bucket layouts. Keeping these in one place keeps histograms with
// the same unit comparable across components.
var (
	// LatencyMSBuckets covers 10µs .. 60s in ~1-2-5 steps, for
	// millisecond-valued latencies (build, restart, queue wait).
	LatencyMSBuckets = []float64{
		0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50,
		100, 200, 500, 1000, 2000, 5000, 10000, 30000, 60000,
	}
	// LatencyUSBuckets covers 1µs .. 1s in ~1-2-5 steps, for
	// microsecond-valued latencies (ring round-trips, XenStore ops).
	LatencyUSBuckets = []float64{
		1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
		10000, 20000, 50000, 100000, 200000, 500000, 1000000,
	}
	// DepthBuckets resolves small queue depths exactly, then coarsens.
	DepthBuckets = []float64{
		0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32, 48, 64, 96, 128,
	}
)
