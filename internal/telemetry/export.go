package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// CounterSnap is one counter in a snapshot. Name is the canonical metric
// ID (name plus sorted labels).
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnap is one histogram's summary in a snapshot. Count and Sum
// are exact; the quantiles are bucket-interpolated estimates.
type HistogramSnap struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time export of the whole registry, with every
// section sorted by metric ID so output is stable across runs.
type Snapshot struct {
	Counters     []CounterSnap   `json:"counters,omitempty"`
	Gauges       []GaugeSnap     `json:"gauges,omitempty"`
	Histograms   []HistogramSnap `json:"histograms,omitempty"`
	Spans        []SpanEvent     `json:"spans,omitempty"`
	SpansDropped int64           `json:"spans_dropped,omitempty"`
}

// Snapshot captures the registry's current state. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for id, c := range r.counters {
		counters[id] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for id, g := range r.gauges {
		gauges[id] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for id, h := range r.histograms {
		histograms[id] = h
	}
	r.mu.Unlock()

	for id, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: id, Value: c.Value()})
	}
	for id, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: id, Value: g.Value()})
	}
	for id, h := range histograms {
		count, sum, min, max, p50, p95, p99 := h.stats()
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name: id, Count: count, Sum: sum, Min: min, Max: max,
			P50: p50, P95: p95, P99: p99,
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	s.Spans = r.tracer.Events()
	s.SpansDropped = r.tracer.Dropped()
	return s
}

// Text renders the snapshot as aligned human-readable text.
func (s Snapshot) Text() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("# counters\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "%-52s %d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("# gauges\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "%-52s %g\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("# histograms (count sum min p50 p95 p99 max)\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "%-52s n=%-6d sum=%-12.3f min=%-10.3f p50=%-10.3f p95=%-10.3f p99=%-10.3f max=%.3f\n",
				h.Name, h.Count, h.Sum, h.Min, h.P50, h.P95, h.P99, h.Max)
		}
	}
	if len(s.Spans) > 0 {
		fmt.Fprintf(&b, "# spans (%d recorded", len(s.Spans))
		if s.SpansDropped > 0 {
			fmt.Fprintf(&b, ", %d dropped", s.SpansDropped)
		}
		b.WriteString(")\n")
		depth := make(map[SpanID]int, len(s.Spans))
		for _, ev := range s.Spans {
			d := 0
			if pd, ok := depth[ev.Parent]; ok {
				d = pd + 1
			}
			depth[ev.ID] = d
			open := ""
			if ev.Open {
				open = " (open)"
			}
			fmt.Fprintf(&b, "%12.6fs %s[%s] %s %s%s\n",
				ev.Start.Seconds(), strings.Repeat("  ", d), ev.Domain, ev.Name,
				ev.Duration, open)
		}
	}
	if b.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
