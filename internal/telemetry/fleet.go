package telemetry

import (
	"sort"
	"strings"
	"sync"
)

// Fleet aggregates the registries of many simulated hosts. Each host gets its
// own Registry — instrumentation sites stay host-unaware and within the
// bounded-cardinality label rules — and the fleet injects a `host` label into
// every metric ID at export time, so series from N hypervisors never collide.
//
// The `host` label key is reserved for this exporter; the metricnames lint
// rejects instrumentation sites that set it directly.
type Fleet struct {
	mu    sync.Mutex
	names []string // registration order, for deterministic iteration
	hosts map[string]*Registry
}

// NewFleet returns an empty fleet aggregator.
func NewFleet() *Fleet {
	return &Fleet{hosts: make(map[string]*Registry)}
}

// Host returns the registry for the named host, creating it on first use.
// On a nil fleet it returns nil — the disabled telemetry layer.
func (f *Fleet) Host(name string) *Registry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.hosts[name]
	if !ok {
		r = New()
		f.hosts[name] = r
		f.names = append(f.names, name)
	}
	return r
}

// HostNames returns the registered host names in registration order.
func (f *Fleet) HostNames() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.names...)
}

// withHostLabel rewrites a canonical metric ID (`name` or `name{k=v,...}`,
// labels sorted by key) to include host=<host>, preserving the sort.
func withHostLabel(id, host string) string {
	name, rest := id, ""
	if i := strings.IndexByte(id, '{'); i >= 0 {
		name, rest = id[:i], id[i+1:len(id)-1]
	}
	labels := []string{"host=" + host}
	if rest != "" {
		labels = append(labels, strings.Split(rest, ",")...)
	}
	sort.Strings(labels)
	return name + "{" + strings.Join(labels, ",") + "}"
}

// Snapshot merges every host's snapshot into one, labeling each series with
// its host. Sections are re-sorted by the rewritten IDs so output stays
// stable; span streams are concatenated in host registration order (each
// SpanEvent already carries its domain).
func (f *Fleet) Snapshot() Snapshot {
	var merged Snapshot
	if f == nil {
		return merged
	}
	f.mu.Lock()
	names := append([]string(nil), f.names...)
	hosts := make(map[string]*Registry, len(f.hosts))
	for n, r := range f.hosts {
		hosts[n] = r
	}
	f.mu.Unlock()

	for _, name := range names {
		s := hosts[name].Snapshot()
		for _, c := range s.Counters {
			c.Name = withHostLabel(c.Name, name)
			merged.Counters = append(merged.Counters, c)
		}
		for _, g := range s.Gauges {
			g.Name = withHostLabel(g.Name, name)
			merged.Gauges = append(merged.Gauges, g)
		}
		for _, h := range s.Histograms {
			h.Name = withHostLabel(h.Name, name)
			merged.Histograms = append(merged.Histograms, h)
		}
		merged.Spans = append(merged.Spans, s.Spans...)
		merged.SpansDropped += s.SpansDropped
	}
	sort.Slice(merged.Counters, func(i, j int) bool { return merged.Counters[i].Name < merged.Counters[j].Name })
	sort.Slice(merged.Gauges, func(i, j int) bool { return merged.Gauges[i].Name < merged.Gauges[j].Name })
	sort.Slice(merged.Histograms, func(i, j int) bool { return merged.Histograms[i].Name < merged.Histograms[j].Name })
	return merged
}
