package telemetry

import (
	"sync"

	"xoar/internal/sim"
)

// SpanID identifies one span within a Tracer. Zero is "no span".
type SpanID int64

// Span is one timed operation on the simulated clock. Spans nest: children
// created with StartChild carry their parent's ID, so the per-domain tree
// can be rebuilt at export time. All methods are nil-safe, so disabled
// telemetry costs one nil check at each instrumentation site.
//
// Spans take explicit sim.Time arguments instead of reading a clock:
// instrumentation sites already hold a *sim.Proc (or the environment), and
// an explicit timestamp keeps the tracer free of any scheduling dependency.
type Span struct {
	tr     *Tracer
	id     SpanID
	parent SpanID

	domain string // owning shard/domain class, e.g. "builder"
	name   string
	start  sim.Time
	end    sim.Time
	ended  bool
}

// Tracer records spans in start order. The buffer is bounded: once full,
// new Start calls are counted as dropped rather than growing without
// limit (long simulations would otherwise accumulate spans forever).
type Tracer struct {
	mu      sync.Mutex
	nextID  SpanID
	spans   []*Span
	limit   int
	dropped int64
}

// spanLimit bounds the per-tracer span buffer.
const spanLimit = 8192

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{limit: spanLimit} }

// Start opens a root span for the given domain at time now. Returns nil on
// a nil tracer or when the span buffer is full.
func (t *Tracer) Start(domain, name string, now sim.Time) *Span {
	return t.start(domain, name, 0, now)
}

func (t *Tracer) start(domain, name string, parent SpanID, now sim.Time) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.limit {
		t.dropped++
		return nil
	}
	t.nextID++
	s := &Span{
		tr:     t,
		id:     t.nextID,
		parent: parent,
		domain: domain,
		name:   name,
		start:  now,
		end:    now,
	}
	t.spans = append(t.spans, s)
	return s
}

// Dropped reports how many spans were discarded because the buffer was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// StartChild opens a nested span under s in the same domain. Returns nil
// on a nil span.
func (s *Span) StartChild(name string, now sim.Time) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s.domain, name, s.id, now)
}

// EndAt closes the span at time now. Ending twice keeps the first end.
// No-op on nil.
func (s *Span) EndAt(now sim.Time) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.end = now
}

// SpanEvent is the flat-export form of one span.
type SpanEvent struct {
	ID       SpanID       `json:"id"`
	Parent   SpanID       `json:"parent,omitempty"`
	Domain   string       `json:"domain"`
	Name     string       `json:"name"`
	Start    sim.Time     `json:"start_ns"`
	End      sim.Time     `json:"end_ns"`
	Duration sim.Duration `json:"duration_ns"`
	Open     bool         `json:"open,omitempty"` // true if never ended
}

// Events returns every recorded span in start order, finished or not.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, 0, len(t.spans))
	for _, s := range t.spans {
		out = append(out, SpanEvent{
			ID:       s.id,
			Parent:   s.parent,
			Domain:   s.domain,
			Name:     s.name,
			Start:    s.start,
			End:      s.end,
			Duration: s.end.Sub(s.start),
			Open:     !s.ended,
		})
	}
	return out
}

// SpanNode is one node of the per-domain span tree.
type SpanNode struct {
	Name     string       `json:"name"`
	Start    sim.Time     `json:"start_ns"`
	End      sim.Time     `json:"end_ns"`
	Duration sim.Duration `json:"duration_ns"`
	Children []*SpanNode  `json:"children,omitempty"`
}

// Tree reassembles the recorded spans for one domain into parent/child
// trees, returning the roots in start order. A child whose parent belongs
// to another domain (or was dropped) becomes a root.
func (t *Tracer) Tree(domain string) []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	nodes := make(map[SpanID]*SpanNode)
	var roots []*SpanNode
	for _, s := range t.spans {
		if s.domain != domain {
			continue
		}
		n := &SpanNode{
			Name:     s.name,
			Start:    s.start,
			End:      s.end,
			Duration: s.end.Sub(s.start),
		}
		nodes[s.id] = n
		if parent, ok := nodes[s.parent]; ok {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// Tracer returns the registry's span tracer (nil on a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// StartSpan is shorthand for Tracer().Start.
func (r *Registry) StartSpan(domain, name string, now sim.Time) *Span {
	return r.Tracer().Start(domain, name, now)
}
