// Chrome trace_event export: renders a tracer's span buffer in the JSON
// format chrome://tracing and Perfetto load directly, so pipelined span
// trees (e.g. the Builder's build-batch construct/boot overlap) can be
// inspected on a real timeline instead of read out of a flat dump.

package telemetry

import (
	"encoding/json"

	"xoar/internal/sim"
)

// ChromeTraceEvent is one entry in the trace_event array. Only the "X"
// (complete) and "M" (metadata) phases are emitted; timestamps and
// durations are microseconds of simulated time, per the format.
type ChromeTraceEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   *float64          `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeTraceFile is the top-level JSON object variant of the format.
type chromeTraceFile struct {
	TraceEvents     []ChromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
}

const chromePID = 1

func usOf(t sim.Time) float64        { return float64(t) / float64(sim.Microsecond) }
func usOfDur(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }

// ChromeTrace renders span events as a trace_event JSON document. Each span
// domain becomes one named "thread" (tid assigned in first-appearance
// order), every span a complete ("X") event on its domain's track, so
// parent/child nesting and cross-domain overlap are visible directly.
// Spans still open at export time are flagged with args.open and rendered
// with zero duration rather than dropped.
func ChromeTrace(events []SpanEvent) ([]byte, error) {
	tids := make(map[string]int)
	var out []ChromeTraceEvent
	out = append(out, ChromeTraceEvent{
		Name: "process_name", Phase: "M", PID: chromePID, TID: 0,
		Args: map[string]string{"name": "xoar-sim"},
	})
	tidFor := func(domain string) int {
		if tid, ok := tids[domain]; ok {
			return tid
		}
		tid := len(tids) + 1
		tids[domain] = tid
		out = append(out, ChromeTraceEvent{
			Name: "thread_name", Phase: "M", PID: chromePID, TID: tid,
			Args: map[string]string{"name": domain},
		})
		return tid
	}
	for _, ev := range events {
		dur := usOfDur(ev.Duration)
		e := ChromeTraceEvent{
			Name: ev.Name, Phase: "X",
			TS: usOf(ev.Start), Dur: &dur,
			PID: chromePID, TID: tidFor(ev.Domain),
			Args: map[string]string{"domain": ev.Domain},
		}
		if ev.Open {
			e.Args["open"] = "true"
		}
		out = append(out, e)
	}
	return json.MarshalIndent(chromeTraceFile{TraceEvents: out, DisplayTimeUnit: "ms"}, "", "  ")
}

// ChromeTrace exports the tracer's recorded spans; empty (but valid) JSON
// on a nil tracer.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	return ChromeTrace(t.Events())
}
