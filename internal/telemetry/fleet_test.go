package telemetry

import (
	"reflect"
	"testing"
)

func TestFleetSnapshotLabelsHost(t *testing.T) {
	f := NewFleet()
	for _, h := range []string{"host-0", "host-1"} {
		r := f.Host(h)
		r.Counter("builder_builds_total").Add(1)
		r.Counter("builder_builds_total", L("image", "micro")).Add(2)
	}
	s := f.Snapshot()
	// Plain byte order on the rewritten IDs, as in Registry.Snapshot.
	want := []string{
		"builder_builds_total{host=host-0,image=micro}",
		"builder_builds_total{host=host-0}",
		"builder_builds_total{host=host-1,image=micro}",
		"builder_builds_total{host=host-1}",
	}
	var got []string
	for _, c := range s.Counters {
		got = append(got, c.Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged counter IDs:\n got %v\nwant %v", got, want)
	}
}

func TestFleetSameMetricDoesNotCollide(t *testing.T) {
	f := NewFleet()
	f.Host("a").Counter("restart_total", L("comp", "netback")).Add(3)
	f.Host("b").Counter("restart_total", L("comp", "netback")).Add(5)
	s := f.Snapshot()
	if len(s.Counters) != 2 {
		t.Fatalf("want 2 distinct series, got %d: %+v", len(s.Counters), s.Counters)
	}
	if s.Counters[0].Value != 3 || s.Counters[1].Value != 5 {
		t.Fatalf("per-host values merged wrong: %+v", s.Counters)
	}
}

func TestFleetHostIsStable(t *testing.T) {
	f := NewFleet()
	if f.Host("x") != f.Host("x") {
		t.Fatal("Host must return the same registry per name")
	}
	if f.Host("x") == f.Host("y") {
		t.Fatal("distinct hosts must get distinct registries")
	}
}

func TestNilFleetIsDisabled(t *testing.T) {
	var f *Fleet
	if r := f.Host("x"); r != nil {
		t.Fatal("nil fleet must hand out nil registries")
	}
	// The nil registry chain must be safe to use.
	f.Host("x").Counter("a_b_total").Add(1)
	if s := f.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil fleet snapshot must be empty")
	}
}

func TestWithHostLabelSortsKeys(t *testing.T) {
	cases := map[string]string{
		"a_b_total":                 "a_b_total{host=h}",
		"a_b_total{comp=net}":       "a_b_total{comp=net,host=h}",
		"a_b_total{zone=z}":         "a_b_total{host=h,zone=z}",
		"a_b_total{comp=n,zone=z}":  "a_b_total{comp=n,host=h,zone=z}",
		"a_b_total{image=m,op=get}": "a_b_total{host=h,image=m,op=get}",
	}
	for in, want := range cases {
		if got := withHostLabel(in, "h"); got != want {
			t.Errorf("withHostLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
