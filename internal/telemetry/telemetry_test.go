package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"xoar/internal/sim"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("c", L("a", "b"))
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyMSBuckets)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil handles recorded something: c=%d g=%g h=%d", c.Value(), g.Value(), h.Count())
	}
	sp := r.StartSpan("dom", "op", 0)
	sp.EndAt(10)
	if child := sp.StartChild("x", 5); child != nil {
		t.Fatalf("nil span produced a child")
	}
	if ev := r.Tracer().Events(); ev != nil {
		t.Fatalf("nil tracer returned events: %v", ev)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Spans) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestMetricIDLabelOrderInsensitive(t *testing.T) {
	r := New()
	a := r.Counter("reqs", L("op", "read"), L("shard", "xs"))
	b := r.Counter("reqs", L("shard", "xs"), L("op", "read"))
	if a != b {
		t.Fatalf("label order produced distinct counters")
	}
	a.Inc()
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "reqs{op=read,shard=xs}" {
		t.Fatalf("unexpected counters: %+v", snap.Counters)
	}
}

func TestHistogramExactAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat_ms", []float64{1, 2, 5, 10})
	vals := []float64{0.5, 1.5, 1.5, 4, 8, 20}
	var want float64
	for _, v := range vals {
		h.Observe(v)
		want += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(vals))
	}
	if math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
	if q := h.Quantile(0); q < 0.5 || q > 1 {
		t.Fatalf("p0 = %g, want within first bucket [0.5,1]", q)
	}
	if q := h.Quantile(1); q != 20 {
		t.Fatalf("p100 = %g, want observed max 20", q)
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %g, want within (1,2] bucket", q)
	}
	// All mass in one bucket: quantile stays clamped to [min,max].
	h2 := r.Histogram("one", []float64{10})
	h2.Observe(3)
	h2.Observe(3)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h2.Quantile(q); got < 3-1e-9 || got > 3+1e-9 {
			t.Fatalf("Quantile(%g) = %g, want 3", q, got)
		}
	}
}

func TestSpansNestAndExport(t *testing.T) {
	r := New()
	root := r.StartSpan("builder", "build:netback", 100)
	c1 := root.StartChild("construct", 100)
	c1.EndAt(150)
	c2 := root.StartChild("boot", 150)
	c2.EndAt(400)
	root.EndAt(400)
	other := r.StartSpan("xenstore", "restart", 50)
	other.EndAt(60)

	ev := r.Tracer().Events()
	if len(ev) != 4 {
		t.Fatalf("events = %d, want 4", len(ev))
	}
	if ev[0].Name != "build:netback" || ev[0].Duration != 300 {
		t.Fatalf("root event wrong: %+v", ev[0])
	}
	if ev[1].Parent != ev[0].ID || ev[2].Parent != ev[0].ID {
		t.Fatalf("children not linked to root: %+v", ev)
	}

	tree := r.Tracer().Tree("builder")
	if len(tree) != 1 || len(tree[0].Children) != 2 {
		t.Fatalf("builder tree shape wrong: %+v", tree)
	}
	if tree[0].Children[1].Name != "boot" || tree[0].Children[1].Duration != 250 {
		t.Fatalf("child node wrong: %+v", tree[0].Children[1])
	}
	if got := r.Tracer().Tree("xenstore"); len(got) != 1 || got[0].Name != "restart" {
		t.Fatalf("xenstore tree wrong: %+v", got)
	}
	// Double EndAt keeps the first end.
	root.EndAt(999)
	if ev := r.Tracer().Events(); ev[0].End != 400 {
		t.Fatalf("double EndAt moved end to %d", ev[0].End)
	}
}

func TestTracerBufferBounded(t *testing.T) {
	tr := NewTracer()
	tr.limit = 4
	for i := 0; i < 10; i++ {
		sp := tr.Start("d", "op", sim.Time(i))
		sp.EndAt(sim.Time(i + 1))
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("recorded %d spans, want 4", got)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := New()
	r.Counter("builds_total").Add(3)
	r.Gauge("queue_now").Set(2)
	h := r.Histogram("build_ms", LatencyMSBuckets, L("class", "netback"))
	h.Observe(120)
	sp := r.StartSpan("builder", "build", 0)
	sp.EndAt(sim.Time(5 * sim.Millisecond))

	snap := r.Snapshot()
	text := snap.Text()
	for _, want := range []string{"builds_total", "build_ms{class=netback}", "n=1", "queue_now", "[builder] build"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}
	raw, err := snap.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Fatalf("round-tripped histograms wrong: %+v", back.Histograms)
	}
}

// TestConcurrentExactness hammers one counter and one histogram from many
// goroutines and checks nothing is lost; run with -race to also check the
// synchronization (the CI race shard does).
func TestConcurrentExactness(t *testing.T) {
	r := New()
	const workers, per = 16, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve through the registry every time: the lookup path is
			// shared state too.
			c := r.Counter("hits_total")
			h := r.Histogram("lat_ms", LatencyMSBuckets)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(2)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	h := r.Histogram("lat_ms", LatencyMSBuckets)
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if h.Sum() != float64(workers*per*2) {
		t.Fatalf("histogram sum = %g, want %d", h.Sum(), workers*per*2)
	}
}
