package telemetry

import (
	"encoding/json"
	"testing"

	"xoar/internal/sim"
)

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("builder", "build-batch[2]", sim.Time(10*sim.Millisecond))
	c0 := root.StartChild("construct:a", sim.Time(10*sim.Millisecond))
	c0.EndAt(sim.Time(12 * sim.Millisecond))
	b0 := root.StartChild("boot:a", sim.Time(12*sim.Millisecond))
	other := tr.Start("netback", "ring-setup", sim.Time(13*sim.Millisecond))
	other.EndAt(sim.Time(14 * sim.Millisecond))
	b0.EndAt(sim.Time(20 * sim.Millisecond))
	root.EndAt(sim.Time(20 * sim.Millisecond))
	open := tr.Start("builder", "never-ends", sim.Time(21*sim.Millisecond))
	_ = open

	raw, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []ChromeTraceEvent `json:"traceEvents"`
		DisplayTimeUnit string             `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var meta, complete []ChromeTraceEvent
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			meta = append(meta, ev)
		case "X":
			complete = append(complete, ev)
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	// process_name + one thread_name per domain (builder, netback).
	if len(meta) != 3 {
		t.Fatalf("metadata events = %d, want 3", len(meta))
	}
	if meta[0].Name != "process_name" || meta[0].Args["name"] != "xoar-sim" {
		t.Errorf("process metadata: %+v", meta[0])
	}
	if len(complete) != 5 {
		t.Fatalf("complete events = %d, want 5", len(complete))
	}

	// Spans of the same domain share a tid; distinct domains do not.
	tids := make(map[string]int)
	for _, ev := range complete {
		dom := ev.Args["domain"]
		if tid, ok := tids[dom]; ok && tid != ev.TID {
			t.Errorf("domain %q split across tids %d and %d", dom, tid, ev.TID)
		}
		tids[dom] = ev.TID
	}
	if tids["builder"] == tids["netback"] {
		t.Error("distinct domains share a tid")
	}

	// Timestamps/durations are microseconds: the root spans 10ms-20ms.
	rootEv := complete[0]
	if rootEv.Name != "build-batch[2]" || rootEv.TS != 10_000 || rootEv.Dur == nil || *rootEv.Dur != 10_000 {
		t.Errorf("root event: %+v", rootEv)
	}
	last := complete[len(complete)-1]
	if last.Args["open"] != "true" || *last.Dur != 0 {
		t.Errorf("open span not flagged: %+v", last)
	}

	// A nil tracer still produces a loadable document.
	var nilTr *Tracer
	raw, err = nilTr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("nil-tracer export invalid: %v", err)
	}
}
