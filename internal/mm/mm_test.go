package mm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"xoar/internal/xtypes"
)

func TestCreateDestroyAccounting(t *testing.T) {
	m := NewManager(4096)
	if m.FreeMB() != 4096 {
		t.Fatalf("free = %d, want 4096", m.FreeMB())
	}
	dm, err := m.CreateDomain(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if dm.MaxMB() != 1024 || m.FreeMB() != 3072 {
		t.Fatalf("max=%d free=%d", dm.MaxMB(), m.FreeMB())
	}
	if _, err := m.CreateDomain(1, 10); !errors.Is(err, xtypes.ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := m.DestroyDomain(1); err != nil {
		t.Fatal(err)
	}
	if m.FreeMB() != 4096 {
		t.Fatalf("free after destroy = %d", m.FreeMB())
	}
	if err := m.DestroyDomain(1); !errors.Is(err, xtypes.ErrNoDomain) {
		t.Fatalf("double destroy: %v", err)
	}
}

func TestOvercommitRefused(t *testing.T) {
	m := NewManager(1024)
	if _, err := m.CreateDomain(1, 2048); !errors.Is(err, xtypes.ErrNoMem) {
		t.Fatalf("overcommit: %v", err)
	}
}

func TestSetMaxMem(t *testing.T) {
	m := NewManager(2048)
	if _, err := m.CreateDomain(1, 512); err != nil {
		t.Fatal(err)
	}
	if err := m.SetMaxMem(1, 1024); err != nil {
		t.Fatal(err)
	}
	if m.FreeMB() != 1024 {
		t.Fatalf("free = %d", m.FreeMB())
	}
	if err := m.SetMaxMem(1, 4096); !errors.Is(err, xtypes.ErrNoMem) {
		t.Fatalf("grow beyond free: %v", err)
	}
	if err := m.SetMaxMem(1, 256); err != nil {
		t.Fatal(err)
	}
	if m.FreeMB() != 1792 {
		t.Fatalf("free after shrink = %d", m.FreeMB())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := NewManager(64)
	dm, _ := m.CreateDomain(1, 16)
	data := []byte("xenstore start-info page")
	if err := dm.Write(3, data); err != nil {
		t.Fatal(err)
	}
	got, err := dm.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	// Unwritten page reads as nil.
	if got, _ := dm.Read(4); got != nil {
		t.Fatalf("unwritten page = %q", got)
	}
	// Out-of-range PFN.
	if err := dm.Write(xtypes.PFN(dm.MaxPages()), data); !errors.Is(err, xtypes.ErrInvalid) {
		t.Fatalf("oob write: %v", err)
	}
	// Oversized write.
	if err := dm.Write(0, make([]byte, xtypes.PageSize+1)); !errors.Is(err, xtypes.ErrInvalid) {
		t.Fatalf("oversize write: %v", err)
	}
}

func TestForeignMappingRefcounts(t *testing.T) {
	m := NewManager(256)
	m.CreateDomain(1, 64)
	m.CreateDomain(2, 64)
	if err := m.MapForeign(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.MapForeign(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if n := m.ForeignMapCount(1, 2); n != 2 {
		t.Fatalf("count = %d", n)
	}
	// Destroy target refused while mapped.
	if err := m.DestroyDomain(2); !errors.Is(err, xtypes.ErrInUse) {
		t.Fatalf("destroy with live mappings: %v", err)
	}
	m.UnmapForeign(1, 2)
	m.UnmapForeign(1, 2)
	if err := m.UnmapForeign(1, 2); !errors.Is(err, xtypes.ErrInvalid) {
		t.Fatalf("unbalanced unmap: %v", err)
	}
	if err := m.DestroyDomain(2); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyMapperReleasesTargets(t *testing.T) {
	m := NewManager(256)
	m.CreateDomain(1, 64)
	m.CreateDomain(2, 64)
	m.MapForeign(1, 2, 0)
	// Destroying the mapper clears its outgoing mappings, so the target can go.
	if err := m.DestroyDomain(1); err != nil {
		t.Fatal(err)
	}
	if err := m.DestroyDomain(2); err != nil {
		t.Fatalf("target destroy after mapper gone: %v", err)
	}
}

func TestMappersOf(t *testing.T) {
	m := NewManager(256)
	m.CreateDomain(1, 32)
	m.CreateDomain(2, 32)
	m.CreateDomain(3, 32)
	m.MapForeign(1, 3, 0)
	m.MapForeign(2, 3, 0)
	mappers := m.MappersOf(3)
	if len(mappers) != 2 {
		t.Fatalf("mappers = %v", mappers)
	}
	m.UnmapForeign(1, 3)
	if got := m.MappersOf(3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("mappers after unmap = %v", got)
	}
}

func TestSnapshotRollbackRestoresContents(t *testing.T) {
	m := NewManager(64)
	dm, _ := m.CreateDomain(1, 16)
	dm.Write(0, []byte("boot state"))
	dm.Write(1, []byte("initialized"))
	snap := dm.TakeSnapshot()
	if snap.Pages() != 2 {
		t.Fatalf("snapshot pages = %d", snap.Pages())
	}
	if dm.DirtyPages() != 0 {
		t.Fatalf("dirty after snapshot = %d", dm.DirtyPages())
	}

	dm.Write(0, []byte("corrupted by attacker"))
	dm.Write(5, []byte("attacker implant"))
	if dm.DirtyPages() != 2 {
		t.Fatalf("dirty = %d", dm.DirtyPages())
	}

	restored, err := dm.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored = %d", restored)
	}
	got, _ := dm.Read(0)
	if string(got) != "boot state" {
		t.Fatalf("page 0 after rollback = %q", got)
	}
	if got, _ := dm.Read(5); got != nil {
		t.Fatalf("implant page survived rollback: %q", got)
	}
	if dm.SnapEpoch() != 1 {
		t.Fatalf("epoch = %d", dm.SnapEpoch())
	}
}

func TestRecoveryBoxSurvivesRollback(t *testing.T) {
	m := NewManager(64)
	dm, _ := m.CreateDomain(1, 16)
	dm.Write(0, []byte("code"))
	if err := dm.RegisterRecoveryBox(Region{Start: 8, Count: 2}); err != nil {
		t.Fatal(err)
	}
	dm.TakeSnapshot()

	dm.Write(8, []byte("negotiated ring config")) // long-lived state
	dm.Write(0, []byte("scratch"))                // transient state

	if _, err := dm.Rollback(); err != nil {
		t.Fatal(err)
	}
	got, _ := dm.Read(8)
	if string(got) != "negotiated ring config" {
		t.Fatalf("recovery box lost: %q", got)
	}
	got, _ = dm.Read(0)
	if string(got) != "code" {
		t.Fatalf("non-box page not rolled back: %q", got)
	}
}

func TestRollbackWithoutSnapshotFails(t *testing.T) {
	m := NewManager(64)
	dm, _ := m.CreateDomain(1, 16)
	if _, err := dm.Rollback(); !errors.Is(err, xtypes.ErrInvalid) {
		t.Fatalf("rollback without snapshot: %v", err)
	}
}

func TestRecoveryBoxValidation(t *testing.T) {
	m := NewManager(64)
	dm, _ := m.CreateDomain(1, 1) // 256 pages
	cases := []Region{
		{Start: 0, Count: 0},
		{Start: xtypes.PFN(dm.MaxPages()), Count: 1},
		{Start: xtypes.PFN(dm.MaxPages() - 1), Count: 2},
	}
	for _, r := range cases {
		if err := dm.RegisterRecoveryBox(r); !errors.Is(err, xtypes.ErrInvalid) {
			t.Errorf("region %+v accepted: %v", r, err)
		}
	}
}

// Property: rollback after a snapshot always restores every non-recovery-box
// page to its snapshot contents, regardless of the write pattern.
func TestRollbackRestoresProperty(t *testing.T) {
	f := func(writes []uint8, payloads []byte) bool {
		m := NewManager(16)
		dm, _ := m.CreateDomain(1, 1) // 256 pages
		base := []byte("base")
		for i := 0; i < 16; i++ {
			dm.Write(xtypes.PFN(i), base)
		}
		dm.TakeSnapshot()
		for i, w := range writes {
			pfn := xtypes.PFN(w) % 256
			payload := []byte{byte(i)}
			if len(payloads) > 0 {
				payload = append(payload, payloads[i%len(payloads)])
			}
			dm.Write(pfn, payload)
		}
		if _, err := dm.Rollback(); err != nil {
			return false
		}
		for i := 0; i < 16; i++ {
			got, _ := dm.Read(xtypes.PFN(i))
			if !bytes.Equal(got, base) {
				return false
			}
		}
		// Pages beyond the initial 16 must be gone again.
		for i := 16; i < 256; i++ {
			if got, _ := dm.Read(xtypes.PFN(i)); got != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: reservation accounting never leaks pages across arbitrary
// create/destroy sequences.
func TestAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewManager(1024)
		live := map[xtypes.DomID]bool{}
		for i, op := range ops {
			id := xtypes.DomID(op % 8)
			if op%2 == 0 {
				if _, err := m.CreateDomain(id, int(op%5)*32+32); err == nil {
					live[id] = true
				}
			} else {
				if err := m.DestroyDomain(id); err == nil {
					delete(live, id)
				}
			}
			_ = i
		}
		used := 0
		for id := range live {
			dm, err := m.Domain(id)
			if err != nil {
				return false
			}
			used += dm.MaxMB()
		}
		return m.FreeMB()+used == 1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
