// Package mm models machine memory for the platform: page ownership, foreign
// mappings, copy-on-write snapshots and recovery-box regions.
//
// The model tracks real ownership and mapping state — the privilege decisions
// the paper is about — while page *contents* are materialized lazily, so
// domains with hundreds of MB of reservation cost almost nothing until a page
// is actually written.
//
// Snapshots implement the mechanism of §3.3: a lightweight copy-on-write
// image of a domain taken after boot-and-initialize, to which the domain can
// later be rolled back. A registered recovery box (Baker & Sullivan's term,
// adopted by the paper) is the one region whose contents survive rollback.
package mm

import (
	"fmt"

	"xoar/internal/xtypes"
)

// Region is a contiguous page range [Start, Start+Count) in a domain's
// pseudo-physical space.
type Region struct {
	Start xtypes.PFN
	Count int
}

// RegionOf constructs a region from a start frame and page count.
func RegionOf(start xtypes.PFN, count int) Region { return Region{Start: start, Count: count} }

// Contains reports whether pfn falls inside the region.
func (r Region) Contains(pfn xtypes.PFN) bool {
	return pfn >= r.Start && pfn < r.Start+xtypes.PFN(r.Count)
}

// page is a single frame. Content is nil until first written.
type page struct {
	content []byte
	// sharedKey is the content hash while the frame participates in
	// same-page sharing; the zero value means unshared.
	sharedKey [32]byte
	// dirtySinceSnap marks pages written after the last snapshot; the number
	// of such pages drives the rollback cost model.
	dirtySinceSnap bool
}

// DomainMem is one domain's memory reservation.
type DomainMem struct {
	mgr      *Manager
	id       xtypes.DomID
	maxPages int
	pages    map[xtypes.PFN]*page

	snapshot  *Snapshot
	recovery  []Region
	snapEpoch int // increments on every rollback

	// foreignMappings counts pages of this domain currently mapped by others,
	// keyed by mapper. Destroying a domain with live mappings is refused,
	// matching Xen's reference counting.
	foreignMappings map[xtypes.DomID]int
}

// Snapshot is a point-in-time image of a domain's pages.
type Snapshot struct {
	takenPages int
	contents   map[xtypes.PFN][]byte
}

// Pages reports the number of pages captured in the snapshot.
func (s *Snapshot) Pages() int { return s.takenPages }

// Manager owns all machine memory and every domain reservation.
type Manager struct {
	totalPages int
	freePages  int
	domains    map[xtypes.DomID]*DomainMem

	// mappings tracks every live foreign mapping for audit and teardown.
	mappings map[mappingKey]int

	// Same-page-sharing accounting (dedup.go).
	dedupSavedPages int
	cowBreaks       int
}

type mappingKey struct {
	mapper xtypes.DomID
	target xtypes.DomID
}

// NewManager returns a manager with totalMB megabytes of machine memory.
func NewManager(totalMB int) *Manager {
	return &Manager{
		totalPages: totalMB * (1 << 20) / xtypes.PageSize,
		freePages:  totalMB * (1 << 20) / xtypes.PageSize,
		domains:    make(map[xtypes.DomID]*DomainMem),
		mappings:   make(map[mappingKey]int),
	}
}

// TotalMB reports total machine memory.
func (m *Manager) TotalMB() int { return m.totalPages * xtypes.PageSize / (1 << 20) }

// FreeMB reports unreserved machine memory.
func (m *Manager) FreeMB() int { return m.freePages * xtypes.PageSize / (1 << 20) }

// CreateDomain reserves memMB megabytes for a new domain.
func (m *Manager) CreateDomain(id xtypes.DomID, memMB int) (*DomainMem, error) {
	if _, ok := m.domains[id]; ok {
		return nil, fmt.Errorf("mm: domain %v: %w", id, xtypes.ErrExists)
	}
	pages := memMB * (1 << 20) / xtypes.PageSize
	if pages > m.freePages {
		return nil, fmt.Errorf("mm: %dMB for %v (free %dMB): %w", memMB, id, m.FreeMB(), xtypes.ErrNoMem)
	}
	m.freePages -= pages
	dm := &DomainMem{
		mgr:             m,
		id:              id,
		maxPages:        pages,
		pages:           make(map[xtypes.PFN]*page),
		foreignMappings: make(map[xtypes.DomID]int),
	}
	m.domains[id] = dm
	return dm, nil
}

// DestroyDomain releases a domain's reservation. It fails with ErrInUse while
// other domains hold live mappings of its pages.
func (m *Manager) DestroyDomain(id xtypes.DomID) error {
	dm, ok := m.domains[id]
	if !ok {
		return fmt.Errorf("mm: destroy %v: %w", id, xtypes.ErrNoDomain)
	}
	for mapper, n := range dm.foreignMappings {
		if n > 0 {
			return fmt.Errorf("mm: destroy %v: %d pages mapped by %v: %w", id, n, mapper, xtypes.ErrInUse)
		}
	}
	// Tear down this domain's outgoing mappings.
	for key := range m.mappings {
		if key.mapper == id {
			if target, ok := m.domains[key.target]; ok {
				target.foreignMappings[id] = 0
			}
			delete(m.mappings, key)
		}
	}
	m.freePages += dm.maxPages
	delete(m.domains, id)
	return nil
}

// ForceReleaseMappings tears down every mapping to or from id. The hypervisor
// uses this when destroying a domain: mappers of a dying domain lose their
// mappings (they observe faults on next access), and the dying domain's own
// mappings are released.
func (m *Manager) ForceReleaseMappings(id xtypes.DomID) {
	for key, n := range m.mappings {
		if key.mapper != id && key.target != id {
			continue
		}
		if n > 0 {
			if target, ok := m.domains[key.target]; ok {
				target.foreignMappings[key.mapper] = 0
			}
		}
		delete(m.mappings, key)
	}
}

// Domain returns the reservation for id.
func (m *Manager) Domain(id xtypes.DomID) (*DomainMem, error) {
	dm, ok := m.domains[id]
	if !ok {
		return nil, fmt.Errorf("mm: %v: %w", id, xtypes.ErrNoDomain)
	}
	return dm, nil
}

// SetMaxMem grows or shrinks a domain's reservation.
func (m *Manager) SetMaxMem(id xtypes.DomID, memMB int) error {
	dm, ok := m.domains[id]
	if !ok {
		return fmt.Errorf("mm: setmaxmem %v: %w", id, xtypes.ErrNoDomain)
	}
	pages := memMB * (1 << 20) / xtypes.PageSize
	delta := pages - dm.maxPages
	if delta > m.freePages {
		return fmt.Errorf("mm: setmaxmem %v to %dMB: %w", id, memMB, xtypes.ErrNoMem)
	}
	m.freePages -= delta
	dm.maxPages = pages
	return nil
}

// MapForeign records that mapper has mapped one of target's pages. The
// privilege decision (is mapper allowed?) belongs to the hypervisor; mm only
// maintains the reference counts.
func (m *Manager) MapForeign(mapper, target xtypes.DomID, pfn xtypes.PFN) error {
	dm, ok := m.domains[target]
	if !ok {
		return fmt.Errorf("mm: map foreign %v->%v: %w", mapper, target, xtypes.ErrNoDomain)
	}
	if _, ok := m.domains[mapper]; !ok {
		return fmt.Errorf("mm: map foreign %v->%v: mapper: %w", mapper, target, xtypes.ErrNoDomain)
	}
	if !dm.validPFN(pfn) {
		return fmt.Errorf("mm: map foreign %v pfn %d: %w", target, pfn, xtypes.ErrInvalid)
	}
	dm.foreignMappings[mapper]++
	m.mappings[mappingKey{mapper, target}]++
	return nil
}

// UnmapForeign releases a mapping created by MapForeign.
func (m *Manager) UnmapForeign(mapper, target xtypes.DomID) error {
	key := mappingKey{mapper, target}
	if m.mappings[key] == 0 {
		return fmt.Errorf("mm: unmap %v->%v: %w", mapper, target, xtypes.ErrInvalid)
	}
	m.mappings[key]--
	if dm, ok := m.domains[target]; ok {
		dm.foreignMappings[mapper]--
	}
	return nil
}

// ForeignMapCount reports how many of target's pages mapper currently maps.
func (m *Manager) ForeignMapCount(mapper, target xtypes.DomID) int {
	return m.mappings[mappingKey{mapper, target}]
}

// MappersOf lists the domains currently holding mappings of target's memory.
// The security evaluation uses this to compute memory-exposure edges.
func (m *Manager) MappersOf(target xtypes.DomID) []xtypes.DomID {
	var out []xtypes.DomID
	for key, n := range m.mappings {
		if key.target == target && n > 0 {
			out = append(out, key.mapper)
		}
	}
	return out
}

func (dm *DomainMem) validPFN(pfn xtypes.PFN) bool {
	return pfn < xtypes.PFN(dm.maxPages)
}

// ID returns the owning domain's ID.
func (dm *DomainMem) ID() xtypes.DomID { return dm.id }

// MaxMB reports the reservation size.
func (dm *DomainMem) MaxMB() int { return dm.maxPages * xtypes.PageSize / (1 << 20) }

// MaxPages reports the reservation size in pages.
func (dm *DomainMem) MaxPages() int { return dm.maxPages }

// Write stores data into the page at pfn, offset 0. Writes mark the page
// dirty relative to the last snapshot.
func (dm *DomainMem) Write(pfn xtypes.PFN, data []byte) error {
	if !dm.validPFN(pfn) {
		return fmt.Errorf("mm: write %v pfn %d: %w", dm.id, pfn, xtypes.ErrInvalid)
	}
	if len(data) > xtypes.PageSize {
		return fmt.Errorf("mm: write %v pfn %d: %d bytes: %w", dm.id, pfn, len(data), xtypes.ErrInvalid)
	}
	pg := dm.pages[pfn]
	if pg == nil {
		pg = &page{}
		dm.pages[pfn] = pg
	}
	if dm.mgr != nil {
		dm.mgr.breakSharing(pg)
	}
	pg.content = append(pg.content[:0], data...)
	pg.dirtySinceSnap = true
	return nil
}

// Read returns the contents of the page at pfn (nil if never written).
func (dm *DomainMem) Read(pfn xtypes.PFN) ([]byte, error) {
	if !dm.validPFN(pfn) {
		return nil, fmt.Errorf("mm: read %v pfn %d: %w", dm.id, pfn, xtypes.ErrInvalid)
	}
	pg := dm.pages[pfn]
	if pg == nil {
		return nil, nil
	}
	out := make([]byte, len(pg.content))
	copy(out, pg.content)
	return out, nil
}

// TouchedPages reports the number of pages ever written.
func (dm *DomainMem) TouchedPages() int { return len(dm.pages) }

// DirtyPages reports pages written since the last snapshot; this is the
// copy-on-write working set whose size drives rollback cost.
func (dm *DomainMem) DirtyPages() int {
	n := 0
	for _, pg := range dm.pages {
		if pg.dirtySinceSnap {
			n++
		}
	}
	return n
}

// RegisterRecoveryBox marks a region whose contents persist across rollback
// (§3.3). Multiple disjoint regions may be registered.
func (dm *DomainMem) RegisterRecoveryBox(r Region) error {
	if r.Count <= 0 || !dm.validPFN(r.Start) || !dm.validPFN(r.Start+xtypes.PFN(r.Count)-1) {
		return fmt.Errorf("mm: recovery box %v [%d,+%d): %w", dm.id, r.Start, r.Count, xtypes.ErrInvalid)
	}
	dm.recovery = append(dm.recovery, r)
	return nil
}

// RecoveryBoxes returns the registered recovery regions.
func (dm *DomainMem) RecoveryBoxes() []Region { return dm.recovery }

func (dm *DomainMem) inRecoveryBox(pfn xtypes.PFN) bool {
	for _, r := range dm.recovery {
		if r.Contains(pfn) {
			return true
		}
	}
	return false
}

// TakeSnapshot captures the domain's current image. The copy-on-write flags
// reset: subsequent writes count as the dirty set for the next rollback.
func (dm *DomainMem) TakeSnapshot() *Snapshot {
	snap := &Snapshot{contents: make(map[xtypes.PFN][]byte, len(dm.pages))}
	for pfn, pg := range dm.pages {
		c := make([]byte, len(pg.content))
		copy(c, pg.content)
		snap.contents[pfn] = c
		pg.dirtySinceSnap = false
	}
	snap.takenPages = len(dm.pages)
	dm.snapshot = snap
	return snap
}

// Snapshot returns the current snapshot, or nil if none was taken.
func (dm *DomainMem) Snapshot() *Snapshot { return dm.snapshot }

// SnapEpoch reports how many rollbacks the domain has undergone.
func (dm *DomainMem) SnapEpoch() int { return dm.snapEpoch }

// Rollback restores the domain to its snapshot, preserving recovery-box
// regions. It returns the number of pages that had to be restored (the dirty
// set), which the microreboot engine converts into rollback latency.
func (dm *DomainMem) Rollback() (restored int, err error) {
	if dm.snapshot == nil {
		return 0, fmt.Errorf("mm: rollback %v: no snapshot: %w", dm.id, xtypes.ErrInvalid)
	}
	for pfn, pg := range dm.pages {
		if !pg.dirtySinceSnap {
			continue
		}
		if dm.inRecoveryBox(pfn) {
			continue // recovery box survives rollback
		}
		restored++
		if snapContent, ok := dm.snapshot.contents[pfn]; ok {
			pg.content = append(pg.content[:0], snapContent...)
		} else {
			delete(dm.pages, pfn) // page did not exist at snapshot time
		}
		if pg := dm.pages[pfn]; pg != nil {
			pg.dirtySinceSnap = false
		}
	}
	dm.snapEpoch++
	return restored, nil
}
