package mm

import (
	"crypto/sha256"

	"xoar/internal/xtypes"
)

// Same-page sharing: the memory-density mechanism the paper's introduction
// cites (Difference Engine, Satori, VMware's page sharing) as one of the
// interposition features a virtualization platform must keep — and one of
// the reasons NoHype-style hypervisor removal is a non-starter (§2.3.1).
//
// Dedup scans every domain's written pages, groups identical contents, and
// marks duplicates as shared copy-on-write. A later write to a shared page
// breaks the sharing for that page (a CoW fault in the real system). Freed
// frames return to the allocator as reclaimable headroom, reported by
// EffectiveFreeMB.

// DedupStats reports one scan's outcome.
type DedupStats struct {
	// Scanned is the number of written pages examined.
	Scanned int
	// Groups is the number of distinct shared contents.
	Groups int
	// SavedPages is the number of frames reclaimed (duplicates beyond the
	// first copy in each group).
	SavedPages int
}

// Dedup performs one full same-page-sharing scan across all domains.
func (m *Manager) Dedup() DedupStats {
	var st DedupStats
	groups := make(map[[32]byte][]*page)
	for _, dm := range m.domains {
		for _, pg := range dm.pages {
			if len(pg.content) == 0 {
				continue
			}
			st.Scanned++
			h := sha256.Sum256(pg.content)
			groups[h] = append(groups[h], pg)
		}
	}
	for h, pages := range groups {
		if len(pages) < 2 {
			continue
		}
		st.Groups++
		for _, pg := range pages {
			// Re-marking an already-shared page is idempotent; only newly
			// shared duplicates count as savings.
			if pg.sharedKey != h {
				pg.sharedKey = h
			}
		}
		st.SavedPages += len(pages) - 1
	}
	// Recompute global savings from scratch: groups shrink as writes break
	// sharing, and scans may re-merge.
	m.recountSharedSavings()
	return st
}

// recountSharedSavings rebuilds the reclaimed-frame count from live state.
func (m *Manager) recountSharedSavings() {
	counts := make(map[[32]byte]int)
	for _, dm := range m.domains {
		for _, pg := range dm.pages {
			if pg.sharedKey != ([32]byte{}) {
				counts[pg.sharedKey]++
			}
		}
	}
	saved := 0
	for _, n := range counts {
		if n >= 2 {
			saved += n - 1
		}
	}
	m.dedupSavedPages = saved
}

// SharedSavedPages reports frames currently reclaimed by sharing.
func (m *Manager) SharedSavedPages() int { return m.dedupSavedPages }

// CowBreaks reports how many shared pages were split by writes.
func (m *Manager) CowBreaks() int { return m.cowBreaks }

// EffectiveFreeMB is free memory including frames reclaimed by sharing —
// the headroom dense deployments bank on.
func (m *Manager) EffectiveFreeMB() int {
	return m.FreeMB() + m.dedupSavedPages*xtypes.PageSize/(1<<20)
}

// breakSharing splits a shared page before a write (the CoW fault).
func (m *Manager) breakSharing(pg *page) {
	if pg.sharedKey == ([32]byte{}) {
		return
	}
	pg.sharedKey = [32]byte{}
	m.cowBreaks++
	m.recountSharedSavings()
}
