package mm

import (
	"testing"

	"xoar/internal/xtypes"
)

func TestDedupMergesIdenticalPages(t *testing.T) {
	m := NewManager(256)
	a, _ := m.CreateDomain(1, 64)
	b, _ := m.CreateDomain(2, 64)
	c, _ := m.CreateDomain(3, 64)
	zero := make([]byte, 512) // identical "zero pages"
	const per = 600
	for i := 0; i < per; i++ {
		a.Write(xtypes.PFN(i), zero)
		b.Write(xtypes.PFN(i), zero)
		c.Write(xtypes.PFN(i), zero)
	}
	a.Write(1000, []byte("unique-a"))
	b.Write(1000, []byte("unique-b"))

	st := m.Dedup()
	if st.Scanned != 3*per+2 {
		t.Fatalf("scanned = %d", st.Scanned)
	}
	if st.Groups != 1 {
		t.Fatalf("groups = %d", st.Groups)
	}
	// 1800 identical pages → 1799 frames saved (~7MB).
	if st.SavedPages != 3*per-1 || m.SharedSavedPages() != 3*per-1 {
		t.Fatalf("saved = %d / %d", st.SavedPages, m.SharedSavedPages())
	}
	if m.EffectiveFreeMB() <= m.FreeMB() {
		t.Fatal("sharing reclaimed no headroom")
	}
}

func TestWriteBreaksSharing(t *testing.T) {
	m := NewManager(256)
	a, _ := m.CreateDomain(1, 64)
	b, _ := m.CreateDomain(2, 64)
	same := []byte("common content")
	a.Write(0, same)
	b.Write(0, same)
	m.Dedup()
	if m.SharedSavedPages() != 1 {
		t.Fatalf("saved = %d", m.SharedSavedPages())
	}

	// A writes to its copy: CoW fault, sharing broken, savings gone.
	a.Write(0, []byte("diverged"))
	if m.CowBreaks() != 1 {
		t.Fatalf("cow breaks = %d", m.CowBreaks())
	}
	if m.SharedSavedPages() != 0 {
		t.Fatalf("saved after break = %d", m.SharedSavedPages())
	}
	// B's copy is unharmed.
	data, _ := b.Read(0)
	if string(data) != "common content" {
		t.Fatalf("sharer's content corrupted: %q", data)
	}
}

func TestRescanRemerges(t *testing.T) {
	m := NewManager(256)
	a, _ := m.CreateDomain(1, 64)
	b, _ := m.CreateDomain(2, 64)
	a.Write(0, []byte("v1"))
	b.Write(0, []byte("v1"))
	m.Dedup()
	a.Write(0, []byte("v2"))
	if m.SharedSavedPages() != 0 {
		t.Fatal("sharing should be broken")
	}
	// The pages converge again; the next scan re-merges them.
	b.Write(0, []byte("v2"))
	st := m.Dedup()
	if st.SavedPages != 1 || m.SharedSavedPages() != 1 {
		t.Fatalf("re-merge: %+v / %d", st, m.SharedSavedPages())
	}
}

func TestDedupIdempotent(t *testing.T) {
	m := NewManager(256)
	a, _ := m.CreateDomain(1, 64)
	b, _ := m.CreateDomain(2, 64)
	a.Write(0, []byte("x"))
	b.Write(0, []byte("x"))
	m.Dedup()
	st := m.Dedup()
	if st.SavedPages != 1 || m.SharedSavedPages() != 1 {
		t.Fatalf("double scan inflated savings: %+v / %d", st, m.SharedSavedPages())
	}
}
