// Package hw models the physical machine: CPUs, the PCI bus and config
// space, network and disk controllers, and the serial port.
//
// The models are calibrated to the paper's testbed (Dell Precision T3500:
// quad-core Xeon W3520, Tigon 3 Gigabit NIC, 7200RPM SATA disk) closely
// enough that the evaluation's *shapes* — line-rate transfers, disk-bound
// Postmark, multi-second hardware bring-up during boot — reproduce. Absolute
// calibration beyond that is explicitly a non-goal (see DESIGN.md §5).
package hw

import (
	"fmt"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// Device is a PCI peripheral.
type Device interface {
	Addr() xtypes.PCIAddr
	Class() xtypes.DeviceClass
	Name() string
	// InitTime is the full hardware bring-up cost (probe, reset, negotiate).
	InitTime() sim.Duration
	// FastReinitTime is the cost of re-attaching to already-initialized
	// hardware, used by "fast" microreboots that leave device state intact.
	FastReinitTime() sim.Duration
	// Reset models a full device reset; it costs InitTime.
	Reset(p *sim.Proc)
}

// Machine is the physical host.
type Machine struct {
	Env    *sim.Env
	CPUs   []*sim.Resource // one slot each: physical cores
	Bus    *PCIBus
	Serial *Serial
	RAMMB  int
}

// MachineConfig describes the physical host to model. NICModel/DiskModel
// select hardware generations; their zero values mean the paper testbed's
// Gigabit NIC and 7200RPM SATA disk.
type MachineConfig struct {
	CPUs  int
	RAMMB int
	NICs  int
	Disks int

	NICModel  NICModel
	DiskModel DiskModel
}

// DefaultMachineConfig is the paper's testbed: quad-core, 4GB, one NIC, one
// disk.
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{CPUs: 4, RAMMB: 4096, NICs: 1, Disks: 1}
}

// NewMachine builds the default testbed.
func NewMachine(env *sim.Env) *Machine {
	return NewMachineWith(env, DefaultMachineConfig())
}

// NewMachineWith builds a machine from cfg. Hosts with several network or
// disk controllers get one driver-domain shard per controller at boot
// (Table 6.1's note on multiple NetBack/BlkBack instances).
func NewMachineWith(env *sim.Env, cfg MachineConfig) *Machine {
	if cfg.CPUs <= 0 {
		cfg.CPUs = 4
	}
	if cfg.RAMMB <= 0 {
		cfg.RAMMB = 4096
	}
	m := &Machine{Env: env, RAMMB: cfg.RAMMB}
	for i := 0; i < cfg.CPUs; i++ {
		m.CPUs = append(m.CPUs, sim.NewResource(env, 1))
	}
	m.Bus = NewPCIBus(env)
	m.Serial = NewSerial(env)
	nm := cfg.NICModel
	if nm == (NICModel{}) {
		nm = NICModel1G
	}
	dm := cfg.DiskModel
	if dm == (DiskModel{}) {
		dm = DiskModelSATA7200
	}
	for i := 0; i < cfg.NICs; i++ {
		m.Bus.AddDevice(NewNICModel(env, fmt.Sprintf("%s-%d", nm.Driver, i), xtypes.PCIAddr{Bus: 2, Slot: uint8(i)}, nm))
	}
	for i := 0; i < cfg.Disks; i++ {
		m.Bus.AddDevice(NewDiskModel(env, fmt.Sprintf("%s-%d", dm.Driver, i), xtypes.PCIAddr{Bus: 0, Slot: uint8(28 + i)}, dm))
	}
	return m
}

// NICs returns every NIC on the bus.
func (m *Machine) NICs() []*NIC {
	var out []*NIC
	for _, d := range m.Bus.Devices() {
		if n, ok := d.(*NIC); ok {
			out = append(out, n)
		}
	}
	return out
}

// Disks returns every disk controller on the bus.
func (m *Machine) Disks() []*Disk {
	var out []*Disk
	for _, d := range m.Bus.Devices() {
		if n, ok := d.(*Disk); ok {
			out = append(out, n)
		}
	}
	return out
}

// PCIBus is the shared PCI bus: device inventory, config-space access and
// IOMMU-style assignment of devices to domains. The shared config space is
// why a single component (PCIBack) must multiplex access (§5.3).
type PCIBus struct {
	env     *sim.Env
	devices map[xtypes.PCIAddr]Device
	// assigned maps a device to the domain holding it via passthrough.
	assigned map[xtypes.PCIAddr]xtypes.DomID
	// configOwner is the single domain allowed to touch config space
	// (Dom0 or PCIBack). DomIDNone means unclaimed.
	configOwner xtypes.DomID
	// EnumTime is the cost of a full bus enumeration at boot.
	EnumTime sim.Duration
}

// NewPCIBus returns an empty bus.
func NewPCIBus(env *sim.Env) *PCIBus {
	return &PCIBus{
		env:         env,
		devices:     make(map[xtypes.PCIAddr]Device),
		assigned:    make(map[xtypes.PCIAddr]xtypes.DomID),
		configOwner: xtypes.DomIDNone,
		EnumTime:    1200 * sim.Millisecond,
	}
}

// AddDevice places a device on the bus.
func (b *PCIBus) AddDevice(d Device) { b.devices[d.Addr()] = d }

// Devices lists devices in address order.
func (b *PCIBus) Devices() []Device {
	var out []Device
	for _, d := range b.devices {
		out = append(out, d)
	}
	// Stable order: sort by address triple.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j].Addr(), out[j-1].Addr()); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b xtypes.PCIAddr) bool {
	if a.Domain != b.Domain {
		return a.Domain < b.Domain
	}
	if a.Bus != b.Bus {
		return a.Bus < b.Bus
	}
	return a.Slot < b.Slot
}

// Lookup finds a device by address.
func (b *PCIBus) Lookup(addr xtypes.PCIAddr) (Device, error) {
	d, ok := b.devices[addr]
	if !ok {
		return nil, fmt.Errorf("pci: %v: %w", addr, xtypes.ErrNotFound)
	}
	return d, nil
}

// ClaimConfigSpace makes dom the single multiplexer of config-space access.
func (b *PCIBus) ClaimConfigSpace(dom xtypes.DomID) error {
	if b.configOwner != xtypes.DomIDNone && b.configOwner != dom {
		return fmt.Errorf("pci: config space owned by %v: %w", b.configOwner, xtypes.ErrInUse)
	}
	b.configOwner = dom
	return nil
}

// ReleaseConfigSpace releases ownership; used when PCIBack self-destructs
// after boot (§5.3). Devices remain assigned; only config-space access stops.
func (b *PCIBus) ReleaseConfigSpace(dom xtypes.DomID) {
	if b.configOwner == dom {
		b.configOwner = xtypes.DomIDNone
	}
}

// ConfigOwner reports the current config-space multiplexer.
func (b *PCIBus) ConfigOwner() xtypes.DomID { return b.configOwner }

// ConfigAccess validates a config-space read/write by dom. Only the owner
// may touch it; everything else must proxy through the owner.
func (b *PCIBus) ConfigAccess(dom xtypes.DomID, addr xtypes.PCIAddr) error {
	if dom != b.configOwner {
		return fmt.Errorf("pci: config access to %v by %v (owner %v): %w", addr, dom, b.configOwner, xtypes.ErrPerm)
	}
	if _, ok := b.devices[addr]; !ok {
		return fmt.Errorf("pci: config access to %v: %w", addr, xtypes.ErrNotFound)
	}
	return nil
}

// Assign passes a device through to dom. Fails if already assigned elsewhere,
// mirroring the availability check of Figure 3.1's assign_pci_device.
func (b *PCIBus) Assign(addr xtypes.PCIAddr, dom xtypes.DomID) error {
	if _, ok := b.devices[addr]; !ok {
		return fmt.Errorf("pci: assign %v: %w", addr, xtypes.ErrNotFound)
	}
	if cur, ok := b.assigned[addr]; ok && cur != dom {
		return fmt.Errorf("pci: %v assigned to %v: %w", addr, cur, xtypes.ErrInUse)
	}
	b.assigned[addr] = dom
	return nil
}

// Unassign releases a passthrough assignment.
func (b *PCIBus) Unassign(addr xtypes.PCIAddr) { delete(b.assigned, addr) }

// AssignedTo reports the domain holding addr, or DomIDNone.
func (b *PCIBus) AssignedTo(addr xtypes.PCIAddr) xtypes.DomID {
	if d, ok := b.assigned[addr]; ok {
		return d
	}
	return xtypes.DomIDNone
}

// CheckAccess validates a data-path device access by dom: the device must be
// assigned to dom (IOMMU enforcement).
func (b *PCIBus) CheckAccess(dom xtypes.DomID, addr xtypes.PCIAddr) error {
	if b.assigned[addr] != dom {
		return fmt.Errorf("pci: device %v access by %v: %w", addr, dom, xtypes.ErrPerm)
	}
	return nil
}

// Enumerate models a full bus scan; it costs EnumTime plus each unassigned
// device's probe share. Returns the devices found.
func (b *PCIBus) Enumerate(p *sim.Proc, dom xtypes.DomID) ([]Device, error) {
	if err := b.ConfigAccess(dom, firstAddr(b)); len(b.devices) > 0 && err != nil {
		return nil, err
	}
	p.Sleep(b.EnumTime)
	return b.Devices(), nil
}

func firstAddr(b *PCIBus) xtypes.PCIAddr {
	for a := range b.devices {
		return a
	}
	return xtypes.PCIAddr{}
}
