package hw

import (
	"errors"
	"math"
	"testing"

	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

func TestMachineInventory(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	if len(m.CPUs) != 4 {
		t.Fatalf("cpus = %d", len(m.CPUs))
	}
	if len(m.NICs()) != 1 || len(m.Disks()) != 1 {
		t.Fatalf("nics=%d disks=%d", len(m.NICs()), len(m.Disks()))
	}
	devs := m.Bus.Devices()
	if len(devs) != 2 {
		t.Fatalf("devices = %d", len(devs))
	}
	// Address-ordered: disk at 00:1f before NIC at 02:00.
	if devs[0].Class() != xtypes.DevDisk || devs[1].Class() != xtypes.DevNIC {
		t.Fatalf("device order: %v %v", devs[0].Class(), devs[1].Class())
	}
}

func TestConfigSpaceSingleOwner(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	nicAddr := m.NICs()[0].Addr()
	if err := m.Bus.ConfigAccess(3, nicAddr); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("unclaimed config access: %v", err)
	}
	if err := m.Bus.ClaimConfigSpace(3); err != nil {
		t.Fatal(err)
	}
	if err := m.Bus.ClaimConfigSpace(4); !errors.Is(err, xtypes.ErrInUse) {
		t.Fatalf("second claim: %v", err)
	}
	if err := m.Bus.ConfigAccess(3, nicAddr); err != nil {
		t.Fatal(err)
	}
	if err := m.Bus.ConfigAccess(4, nicAddr); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("non-owner access: %v", err)
	}
	m.Bus.ReleaseConfigSpace(3)
	if m.Bus.ConfigOwner() != xtypes.DomIDNone {
		t.Fatal("release failed")
	}
	// After release (PCIBack self-destructed) nobody can touch config space.
	if err := m.Bus.ConfigAccess(3, nicAddr); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("post-release access: %v", err)
	}
}

func TestDeviceAssignment(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	addr := m.NICs()[0].Addr()
	if err := m.Bus.Assign(addr, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Bus.Assign(addr, 5); err != nil {
		t.Fatalf("re-assign to same dom: %v", err)
	}
	if err := m.Bus.Assign(addr, 6); !errors.Is(err, xtypes.ErrInUse) {
		t.Fatalf("double assign: %v", err)
	}
	if err := m.Bus.CheckAccess(5, addr); err != nil {
		t.Fatal(err)
	}
	if err := m.Bus.CheckAccess(6, addr); !errors.Is(err, xtypes.ErrPerm) {
		t.Fatalf("IOMMU bypass: %v", err)
	}
	m.Bus.Unassign(addr)
	if m.Bus.AssignedTo(addr) != xtypes.DomIDNone {
		t.Fatal("unassign failed")
	}
	if err := m.Bus.Assign(xtypes.PCIAddr{Bus: 9}, 5); !errors.Is(err, xtypes.ErrNotFound) {
		t.Fatalf("assign missing device: %v", err)
	}
}

func TestNICLineRate(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	nic := m.NICs()[0]
	const size = 117_000_000 // one second of line rate
	env.Spawn("tx", func(p *sim.Proc) {
		nic.Transmit(p, size)
	})
	end := env.RunAll()
	if math.Abs(end.Seconds()-1.0) > 0.01 {
		t.Fatalf("1s of traffic took %vs", end.Seconds())
	}
	if nic.TxBytes != size {
		t.Fatalf("txbytes = %d", nic.TxBytes)
	}
}

func TestNICFullDuplex(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	nic := m.NICs()[0]
	const size = 58_500_000 // half a second each way
	env.Spawn("tx", func(p *sim.Proc) { nic.Transmit(p, size) })
	env.Spawn("rx", func(p *sim.Proc) { nic.Receive(p, size) })
	end := env.RunAll()
	if math.Abs(end.Seconds()-0.5) > 0.01 {
		t.Fatalf("duplex transfer took %vs, want ~0.5s", end.Seconds())
	}
}

func TestNICTxSerializes(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	nic := m.NICs()[0]
	const size = 58_500_000
	env.Spawn("tx1", func(p *sim.Proc) { nic.Transmit(p, size) })
	env.Spawn("tx2", func(p *sim.Proc) { nic.Transmit(p, size) })
	end := env.RunAll()
	if math.Abs(end.Seconds()-1.0) > 0.01 {
		t.Fatalf("two tx took %vs, want ~1s", end.Seconds())
	}
}

func TestDiskSequentialBandwidth(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	disk := m.Disks()[0]
	const size = 110_000_000
	env.Spawn("w", func(p *sim.Proc) { disk.Write(p, size, true) })
	end := env.RunAll()
	if math.Abs(end.Seconds()-1.0) > 0.01 {
		t.Fatalf("sequential write took %vs", end.Seconds())
	}
}

func TestDiskSeekPenalty(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	disk := m.Disks()[0]
	var seqT, rndT sim.Duration
	env.Spawn("seq", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 10; i++ {
			disk.Read(p, 4096, true)
		}
		seqT = p.Now().Sub(start)
	})
	env.RunAll()
	env2 := sim.NewEnv(1)
	m2 := NewMachine(env2)
	disk2 := m2.Disks()[0]
	env2.Spawn("rnd", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 10; i++ {
			disk2.Read(p, 4096, false)
		}
		rndT = p.Now().Sub(start)
	})
	env2.RunAll()
	if rndT < seqT*20 {
		t.Fatalf("random (%v) not much slower than sequential (%v)", rndT, seqT)
	}
}

func TestDeviceResetCosts(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	nic := m.NICs()[0]
	var fullT, fastT sim.Duration
	env.Spawn("reset", func(p *sim.Proc) {
		t0 := p.Now()
		nic.Reset(p)
		fullT = p.Now().Sub(t0)
		t0 = p.Now()
		nic.FastReinit(p)
		fastT = p.Now().Sub(t0)
	})
	env.RunAll()
	if fullT != nic.InitTime() || fastT != nic.FastReinitTime() {
		t.Fatalf("reset costs full=%v fast=%v", fullT, fastT)
	}
	if !nic.Initialized() {
		t.Fatal("nic not initialized after reset")
	}
	if fastT*10 > fullT {
		t.Fatal("fast reinit should be much cheaper than full reset")
	}
}

func TestEnumerateRequiresOwnership(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	var devs []Device
	var enumErr error
	env.Spawn("pciback", func(p *sim.Proc) {
		if _, err := m.Bus.Enumerate(p, 7); !errors.Is(err, xtypes.ErrPerm) {
			t.Errorf("enumerate without claim: %v", err)
		}
		m.Bus.ClaimConfigSpace(7)
		devs, enumErr = m.Bus.Enumerate(p, 7)
	})
	end := env.RunAll()
	if enumErr != nil || len(devs) != 2 {
		t.Fatalf("enumerate: %v, %d devices", enumErr, len(devs))
	}
	if sim.Duration(end) < m.Bus.EnumTime {
		t.Fatalf("enumeration took %v, below EnumTime", sim.Duration(end))
	}
}

func TestSerialLog(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachine(env)
	m.Serial.WriteLine("login:")
	if got := m.Serial.Log(); len(got) != 1 || got[0] != "login:" {
		t.Fatalf("log = %v", got)
	}
}

func TestMachineConfigModels(t *testing.T) {
	env := sim.NewEnv(1)
	m := NewMachineWith(env, MachineConfig{
		CPUs: 4, RAMMB: 4096, NICs: 1, Disks: 1,
		NICModel: NICModel10G, DiskModel: DiskModelNVMe,
	})
	nic := m.NICs()[0]
	if nic.Name() != "ixgbe-0" || nic.LineRate != 1.17e9 {
		t.Fatalf("nic = %s rate %.0f", nic.Name(), nic.LineRate)
	}
	disk := m.Disks()[0]
	if disk.Name() != "nvme-0" || disk.Bandwidth != 3.2e9 {
		t.Fatalf("disk = %s bw %.0f", disk.Name(), disk.Bandwidth)
	}
	// The zero-valued config still builds the paper testbed.
	def := NewMachineWith(sim.NewEnv(1), DefaultMachineConfig())
	if def.NICs()[0].Name() != "tg3-0" || def.Disks()[0].Name() != "sata-0" {
		t.Fatalf("default models changed: %s %s", def.NICs()[0].Name(), def.Disks()[0].Name())
	}
	// A faster generation really is faster end to end.
	if nvme, sata := disk, def.Disks()[0]; nvme.xferTime(1<<20) >= sata.xferTime(1<<20) {
		t.Fatal("nvme not faster than sata")
	}
}
