package hw

import (
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// Disk models a 7200RPM SATA disk behind an AHCI controller: a single arm
// (requests serialize), sequential bandwidth around 110MB/s, a rotational
// seek penalty for non-sequential operations, and a small per-command
// overhead. Spin-up dominates bring-up at boot.
type Disk struct {
	env  *sim.Env
	name string
	addr xtypes.PCIAddr

	// Bandwidth is sustained sequential throughput in bytes/second.
	Bandwidth float64
	// SeekTime is the average penalty for a non-sequential operation.
	SeekTime sim.Duration
	// PerOp is controller/command overhead applied to every operation.
	PerOp sim.Duration

	arm *sim.Resource

	initialized    bool
	initTime       sim.Duration
	fastReinitTime sim.Duration

	// Counters.
	ReadBytes  int64
	WriteBytes int64
	Ops        int64
}

// DiskModel is a parameter preset for a storage-device generation. The zero
// value means "use the default model" (the paper testbed's 7200RPM SATA disk).
type DiskModel struct {
	// Driver is the device-name prefix ("sata" → "sata-0").
	Driver string
	// Bandwidth is sustained sequential throughput in bytes/second.
	Bandwidth float64
	// SeekTime is the penalty for a non-sequential operation.
	SeekTime sim.Duration
	// PerOp is controller/command overhead applied to every operation.
	PerOp sim.Duration
	// InitTime and FastReinitTime are the bring-up costs.
	InitTime       sim.Duration
	FastReinitTime sim.Duration
}

var (
	// DiskModelSATA7200 is the paper testbed's 7200RPM SATA disk.
	DiskModelSATA7200 = DiskModel{Driver: "sata", Bandwidth: 110e6, SeekTime: 8 * sim.Millisecond,
		PerOp: 60 * sim.Microsecond, InitTime: 2500 * sim.Millisecond, FastReinitTime: 25 * sim.Millisecond}
	// DiskModelNVMe is a datacenter NVMe SSD: no rotational seek, a small
	// flash-translation penalty for random access, microsecond command cost.
	DiskModelNVMe = DiskModel{Driver: "nvme", Bandwidth: 3.2e9, SeekTime: 20 * sim.Microsecond,
		PerOp: 10 * sim.Microsecond, InitTime: 400 * sim.Millisecond, FastReinitTime: 10 * sim.Millisecond}
)

// NewDisk returns a 7200RPM disk model at addr.
func NewDisk(env *sim.Env, name string, addr xtypes.PCIAddr) *Disk {
	return NewDiskModel(env, name, addr, DiskModelSATA7200)
}

// NewDiskModel returns a disk at addr built from a model preset.
func NewDiskModel(env *sim.Env, name string, addr xtypes.PCIAddr, m DiskModel) *Disk {
	if m == (DiskModel{}) {
		m = DiskModelSATA7200
	}
	return &Disk{
		env:            env,
		name:           name,
		addr:           addr,
		Bandwidth:      m.Bandwidth,
		SeekTime:       m.SeekTime,
		PerOp:          m.PerOp,
		arm:            sim.NewResource(env, 1),
		initTime:       m.InitTime,
		fastReinitTime: m.FastReinitTime,
	}
}

// Addr implements Device.
func (d *Disk) Addr() xtypes.PCIAddr { return d.addr }

// Class implements Device.
func (d *Disk) Class() xtypes.DeviceClass { return xtypes.DevDisk }

// Name implements Device.
func (d *Disk) Name() string { return d.name }

// InitTime implements Device.
func (d *Disk) InitTime() sim.Duration { return d.initTime }

// FastReinitTime implements Device.
func (d *Disk) FastReinitTime() sim.Duration { return d.fastReinitTime }

// Reset implements Device.
func (d *Disk) Reset(p *sim.Proc) {
	d.initialized = false
	p.Sleep(d.initTime)
	d.initialized = true
}

// FastReinit re-attaches without a controller reset.
func (d *Disk) FastReinit(p *sim.Proc) {
	p.Sleep(d.fastReinitTime)
	d.initialized = true
}

// Initialized reports whether the disk has been brought up.
func (d *Disk) Initialized() bool { return d.initialized }

// xferTime converts a transfer size to media time.
func (d *Disk) xferTime(bytes int) sim.Duration {
	return sim.Duration(float64(bytes) / d.Bandwidth * float64(sim.Second))
}

// Read performs a read of the given size. sequential selects whether the
// seek penalty applies.
func (d *Disk) Read(p *sim.Proc, bytes int, sequential bool) {
	d.io(p, bytes, sequential)
	d.ReadBytes += int64(bytes)
}

// Write performs a write of the given size.
func (d *Disk) Write(p *sim.Proc, bytes int, sequential bool) {
	d.io(p, bytes, sequential)
	d.WriteBytes += int64(bytes)
}

func (d *Disk) io(p *sim.Proc, bytes int, sequential bool) {
	cost := d.PerOp + d.xferTime(bytes)
	if !sequential {
		cost += d.SeekTime
	}
	d.arm.Use(p, cost)
	d.Ops++
}

// Serial is the physical serial port. Output is captured into a log so the
// console path is observable in tests and examples. Writes are effectively
// free: the models that matter (boot, consoles) are not serial-bound.
type Serial struct {
	env *sim.Env
	log []string
	// InputVIRQ subscribers are modelled at the hypervisor layer; hw only
	// stores the output side.
}

// NewSerial returns a serial port.
func NewSerial(env *sim.Env) *Serial { return &Serial{env: env} }

// WriteLine appends a line to the captured output.
func (s *Serial) WriteLine(line string) { s.log = append(s.log, line) }

// Log returns the captured output.
func (s *Serial) Log() []string { return s.log }
