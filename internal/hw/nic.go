package hw

import (
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// NIC models a Gigabit Ethernet controller. Transmit and receive paths are
// independent resources (full duplex); each transfer occupies the wire for
// size/line-rate. A separate LAN latency constant models the propagation and
// switch delay to the directly connected test peer.
type NIC struct {
	env  *sim.Env
	name string
	addr xtypes.PCIAddr

	// LineRate is effective payload bandwidth in bytes/second. Gigabit
	// Ethernet minus framing overhead lands near 117MB/s.
	LineRate float64
	// LANLatency is one-way propagation to the directly attached peer.
	LANLatency sim.Duration

	tx *sim.Resource
	rx *sim.Resource

	initialized bool
	// PHY autonegotiation plus driver probe dominates full bring-up.
	initTime       sim.Duration
	fastReinitTime sim.Duration

	// Counters for tests and experiment output.
	TxBytes int64
	RxBytes int64
}

// NICModel is a parameter preset for a NIC generation. The zero value means
// "use the default model" (the paper testbed's Gigabit Tigon 3).
type NICModel struct {
	// Driver is the device-name prefix ("tg3" → "tg3-0").
	Driver string
	// LineRate is effective payload bandwidth in bytes/second.
	LineRate float64
	// LANLatency is one-way propagation to the directly attached peer.
	LANLatency sim.Duration
	// InitTime and FastReinitTime are the bring-up costs.
	InitTime       sim.Duration
	FastReinitTime sim.Duration
}

// NIC generations. Line rates are payload throughput after framing overhead
// (~93.5% of nominal). Faster NICs sit on lower-latency fabrics and skip the
// multi-second PHY autonegotiation of the Gigabit part.
var (
	// NICModel1G is the paper testbed's Tigon 3 Gigabit NIC.
	NICModel1G = NICModel{Driver: "tg3", LineRate: 117e6, LANLatency: 50 * sim.Microsecond,
		InitTime: 3500 * sim.Millisecond, FastReinitTime: 30 * sim.Millisecond}
	// NICModel10G is an Intel 82599-class 10GbE NIC.
	NICModel10G = NICModel{Driver: "ixgbe", LineRate: 1.17e9, LANLatency: 20 * sim.Microsecond,
		InitTime: 2000 * sim.Millisecond, FastReinitTime: 30 * sim.Millisecond}
	// NICModel25G is a ConnectX-4-class 25GbE NIC.
	NICModel25G = NICModel{Driver: "mlx5", LineRate: 2.9e9, LANLatency: 10 * sim.Microsecond,
		InitTime: 1500 * sim.Millisecond, FastReinitTime: 25 * sim.Millisecond}
	// NICModel100G is a ConnectX-5-class 100GbE NIC.
	NICModel100G = NICModel{Driver: "mlx5-100g", LineRate: 11.7e9, LANLatency: 5 * sim.Microsecond,
		InitTime: 1500 * sim.Millisecond, FastReinitTime: 25 * sim.Millisecond}
)

// NewNIC returns a Gigabit NIC at addr.
func NewNIC(env *sim.Env, name string, addr xtypes.PCIAddr) *NIC {
	return NewNICModel(env, name, addr, NICModel1G)
}

// NewNICModel returns a NIC at addr built from a model preset.
func NewNICModel(env *sim.Env, name string, addr xtypes.PCIAddr, m NICModel) *NIC {
	if m == (NICModel{}) {
		m = NICModel1G
	}
	return &NIC{
		env:            env,
		name:           name,
		addr:           addr,
		LineRate:       m.LineRate,
		LANLatency:     m.LANLatency,
		tx:             sim.NewResource(env, 1),
		rx:             sim.NewResource(env, 1),
		initTime:       m.InitTime,
		fastReinitTime: m.FastReinitTime,
	}
}

// Addr implements Device.
func (n *NIC) Addr() xtypes.PCIAddr { return n.addr }

// Class implements Device.
func (n *NIC) Class() xtypes.DeviceClass { return xtypes.DevNIC }

// Name implements Device.
func (n *NIC) Name() string { return n.name }

// InitTime implements Device.
func (n *NIC) InitTime() sim.Duration { return n.initTime }

// FastReinitTime implements Device.
func (n *NIC) FastReinitTime() sim.Duration { return n.fastReinitTime }

// Reset implements Device: full reinitialization, costing InitTime.
func (n *NIC) Reset(p *sim.Proc) {
	n.initialized = false
	p.Sleep(n.initTime)
	n.initialized = true
}

// FastReinit re-attaches to live hardware without a PHY renegotiation.
func (n *NIC) FastReinit(p *sim.Proc) {
	p.Sleep(n.fastReinitTime)
	n.initialized = true
}

// Initialized reports whether the NIC has been brought up.
func (n *NIC) Initialized() bool { return n.initialized }

// wireTime converts a payload size to wire occupancy.
func (n *NIC) wireTime(bytes int) sim.Duration {
	return sim.Duration(float64(bytes) / n.LineRate * float64(sim.Second))
}

// Transmit sends bytes out the wire, blocking for the wire time. The wire
// slot is released even if the caller is killed mid-transfer (a NetBack pump
// torn down by a microreboot).
func (n *NIC) Transmit(p *sim.Proc, bytes int) {
	n.tx.Use(p, n.wireTime(bytes))
	n.TxBytes += int64(bytes)
}

// Receive models bytes arriving from the wire, blocking for the wire time.
func (n *NIC) Receive(p *sim.Proc, bytes int) {
	n.rx.Use(p, n.wireTime(bytes))
	n.RxBytes += int64(bytes)
}
