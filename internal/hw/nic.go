package hw

import (
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// NIC models a Gigabit Ethernet controller. Transmit and receive paths are
// independent resources (full duplex); each transfer occupies the wire for
// size/line-rate. A separate LAN latency constant models the propagation and
// switch delay to the directly connected test peer.
type NIC struct {
	env  *sim.Env
	name string
	addr xtypes.PCIAddr

	// LineRate is effective payload bandwidth in bytes/second. Gigabit
	// Ethernet minus framing overhead lands near 117MB/s.
	LineRate float64
	// LANLatency is one-way propagation to the directly attached peer.
	LANLatency sim.Duration

	tx *sim.Resource
	rx *sim.Resource

	initialized bool
	// PHY autonegotiation plus driver probe dominates full bring-up.
	initTime       sim.Duration
	fastReinitTime sim.Duration

	// Counters for tests and experiment output.
	TxBytes int64
	RxBytes int64
}

// NewNIC returns a Gigabit NIC at addr.
func NewNIC(env *sim.Env, name string, addr xtypes.PCIAddr) *NIC {
	return &NIC{
		env:            env,
		name:           name,
		addr:           addr,
		LineRate:       117e6,
		LANLatency:     50 * sim.Microsecond,
		tx:             sim.NewResource(env, 1),
		rx:             sim.NewResource(env, 1),
		initTime:       3500 * sim.Millisecond, // PHY autoneg ~3s + probe
		fastReinitTime: 30 * sim.Millisecond,
	}
}

// Addr implements Device.
func (n *NIC) Addr() xtypes.PCIAddr { return n.addr }

// Class implements Device.
func (n *NIC) Class() xtypes.DeviceClass { return xtypes.DevNIC }

// Name implements Device.
func (n *NIC) Name() string { return n.name }

// InitTime implements Device.
func (n *NIC) InitTime() sim.Duration { return n.initTime }

// FastReinitTime implements Device.
func (n *NIC) FastReinitTime() sim.Duration { return n.fastReinitTime }

// Reset implements Device: full reinitialization, costing InitTime.
func (n *NIC) Reset(p *sim.Proc) {
	n.initialized = false
	p.Sleep(n.initTime)
	n.initialized = true
}

// FastReinit re-attaches to live hardware without a PHY renegotiation.
func (n *NIC) FastReinit(p *sim.Proc) {
	p.Sleep(n.fastReinitTime)
	n.initialized = true
}

// Initialized reports whether the NIC has been brought up.
func (n *NIC) Initialized() bool { return n.initialized }

// wireTime converts a payload size to wire occupancy.
func (n *NIC) wireTime(bytes int) sim.Duration {
	return sim.Duration(float64(bytes) / n.LineRate * float64(sim.Second))
}

// Transmit sends bytes out the wire, blocking for the wire time. The wire
// slot is released even if the caller is killed mid-transfer (a NetBack pump
// torn down by a microreboot).
func (n *NIC) Transmit(p *sim.Proc, bytes int) {
	n.tx.Use(p, n.wireTime(bytes))
	n.TxBytes += int64(bytes)
}

// Receive models bytes arriving from the wire, blocking for the wire time.
func (n *NIC) Receive(p *sim.Proc, bytes int) {
	n.rx.Use(p, n.wireTime(bytes))
	n.RxBytes += int64(bytes)
}
