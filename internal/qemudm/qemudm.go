// Package qemudm implements the QemuVM shard (§4.5.2, Table 5.1): a per-guest
// device-emulation stub domain. Unmodified (HVM) guests expect emulated
// platform devices — BIOS, IDE disk, e1000-style NIC — so each HVM guest gets
// a dedicated QemuVM that performs the emulation and forwards the resulting
// I/O through its own paravirtual frontends to the driver domains.
//
// The QemuVM holds the privileged-for flag over exactly its guest (§5.6): it
// may map that guest's memory to emulate DMA, and nothing else. This is the
// containment boundary behind the §6.2.1 result that all device-emulation
// attacks collapse to the privileges of one guest's QemuVM.
package qemudm

// The QemuVM embeds the *frontend* halves of netdrv and blkdrv — the client
// side of the split drivers, the same code any guest kernel links in — to
// forward emulated I/O to the driver domains. No backend state is shared;
// the frontends talk to their backends over hv-audited rings like every
// other client, so the two imports are suppressed rather than the layering
// rule relaxed.
import (
	"fmt"

	//xoarlint:allow(layering) frontend half only; traffic rides the guest's hv-audited rings
	"xoar/internal/blkdrv"
	"xoar/internal/hv"
	//xoarlint:allow(layering) frontend half only; traffic rides the guest's hv-audited rings
	"xoar/internal/netdrv"
	"xoar/internal/sim"
	"xoar/internal/xtypes"
)

// Emulation overheads: device emulation traps every I/O access, decodes it,
// and re-issues it — an order of magnitude more CPU per operation than the
// paravirtual path (§2.2.1 notes emulation's complexity; its slowness is
// why PV drivers exist).
const (
	perEmulOpCPU   = 180 * sim.Microsecond
	perEmulPageCPU = 3 * sim.Microsecond // shadow copy per 4K page of payload
)

// QemuVM is one guest's device-emulation domain.
type QemuVM struct {
	H     *hv.Hypervisor
	Dom   xtypes.DomID // the stub domain
	Guest xtypes.DomID // the single guest it emulates for

	// Net and Blk are the QemuVM's own PV frontends toward the driver
	// domains; emulated guest I/O funnels through them.
	Net *netdrv.Frontend
	Blk *blkdrv.Frontend

	EmulatedOps int64
}

// New constructs the device model for guest running in stub domain dom.
// The caller (Builder) must have set the privileged-for flag beforehand.
func New(h *hv.Hypervisor, dom, guest xtypes.DomID) *QemuVM {
	return &QemuVM{H: h, Dom: dom, Guest: guest}
}

// emulate charges the emulation cost for an operation with a payload, and
// performs the DMA into guest memory through the privileged-for mapping.
// The MapForeign call is the real privilege check: a QemuVM whose flag was
// never set — or one trying to reach a different guest — fails here.
func (q *QemuVM) emulate(p *sim.Proc, target xtypes.DomID, bytes int) error {
	pages := (bytes + xtypes.PageSize - 1) / xtypes.PageSize
	q.H.Compute(p, q.Dom, perEmulOpCPU+sim.Duration(pages)*perEmulPageCPU)
	if err := q.H.MapForeign(q.Dom, target, 0); err != nil {
		return fmt.Errorf("qemudm: dma map: %w", err)
	}
	defer q.H.UnmapForeign(q.Dom, target)
	q.EmulatedOps++
	return nil
}

// DiskWrite emulates an IDE write of the given size and forwards it through
// the PV block frontend.
func (q *QemuVM) DiskWrite(p *sim.Proc, bytes int, sequential bool) error {
	if err := q.emulate(p, q.Guest, bytes); err != nil {
		return err
	}
	if q.Blk == nil {
		return fmt.Errorf("qemudm: no block path: %w", xtypes.ErrInvalid)
	}
	return q.Blk.Write(p, bytes, sequential)
}

// DiskRead emulates an IDE read.
func (q *QemuVM) DiskRead(p *sim.Proc, bytes int, sequential bool) error {
	if err := q.emulate(p, q.Guest, bytes); err != nil {
		return err
	}
	if q.Blk == nil {
		return fmt.Errorf("qemudm: no block path: %w", xtypes.ErrInvalid)
	}
	return q.Blk.Read(p, bytes, sequential)
}

// NetSend emulates a NIC transmit and forwards it through the PV net
// frontend.
func (q *QemuVM) NetSend(p *sim.Proc, bytes int, seq int64) error {
	if err := q.emulate(p, q.Guest, bytes); err != nil {
		return err
	}
	if q.Net == nil {
		return fmt.Errorf("qemudm: no net path: %w", xtypes.ErrInvalid)
	}
	return q.Net.Send(p, bytes, seq)
}

// AttemptEscape models a compromised device model trying to use its DMA
// privileges against a *different* guest. It must always fail with ErrPerm —
// the assertion behind the device-emulation rows of §6.2.1. It returns the
// error from the hypervisor, nil meaning the platform is misconfigured.
func (q *QemuVM) AttemptEscape(p *sim.Proc, victim xtypes.DomID) error {
	q.H.Compute(p, q.Dom, perEmulOpCPU)
	return q.H.MapForeign(q.Dom, victim, 0)
}
