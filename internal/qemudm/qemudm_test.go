package qemudm

import (
	"errors"
	"testing"

	"xoar/internal/blkdrv"
	"xoar/internal/hv"
	"xoar/internal/hw"
	"xoar/internal/sim"
	"xoar/internal/xenstore"
	"xoar/internal/xtypes"
)

type harness struct {
	env    *sim.Env
	h      *hv.Hypervisor
	q      *QemuVM
	guest  *hv.Domain
	victim *hv.Domain
	blk    *blkdrv.Backend
}

func setup(t *testing.T) *harness {
	t.Helper()
	env := sim.NewEnv(1)
	machine := hw.NewMachine(env)
	h := hv.New(env, machine)
	h.EnforceShardIVC = true

	qd, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "qemu", MemMB: 64, Shard: true})
	h.Unpause(hv.SystemCaller, qd.ID)
	guest, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "hvm-guest", MemMB: 256})
	h.Unpause(hv.SystemCaller, guest.ID)
	victim, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "victim", MemMB: 256})
	h.Unpause(hv.SystemCaller, victim.ID)

	// Builder-side setup: the QemuVM may map exactly its guest, and needs
	// the foreign-map hypercall whitelisted.
	h.AssignPrivileges(hv.SystemCaller, qd.ID, hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperMapForeign}})
	h.SetPrivilegedFor(hv.SystemCaller, qd.ID, guest.ID)

	// Block path: a BlkBack the QemuVM connects to as a client.
	bbDom, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "blkback", MemMB: 128, Shard: true})
	h.Unpause(hv.SystemCaller, bbDom.ID)
	h.LinkShardClient(hv.SystemCaller, bbDom.ID, qd.ID)
	logic := xenstore.NewLogic(env, xenstore.NewState())
	blk := blkdrv.NewBackend(h, bbDom.ID, machine.Disks()[0], logic.Connect(bbDom.ID, true))

	q := New(h, qd.ID, guest.ID)
	q.Blk = blkdrv.NewFrontend(h, qd.ID, logic.Connect(qd.ID, true))
	hn := &harness{env: env, h: h, q: q, guest: guest, victim: victim, blk: blk}

	ok := false
	env.Spawn("boot", func(p *sim.Proc) {
		blk.Start(p)
		blk.CreateImage("hvm-disk", 1024)
		blk.CreateVbd(qd.ID, "hvm-disk")
		if err := q.Blk.Connect(p, blk); err != nil {
			t.Error(err)
			return
		}
		ok = true
	})
	env.RunFor(10 * sim.Second)
	if !ok {
		t.Fatal("boot failed")
	}
	return hn
}

func TestEmulatedDiskIO(t *testing.T) {
	hn := setup(t)
	hn.env.Spawn("guest-io", func(p *sim.Proc) {
		if err := hn.q.DiskWrite(p, 1<<20, true); err != nil {
			t.Error(err)
		}
		if err := hn.q.DiskRead(p, 1<<20, true); err != nil {
			t.Error(err)
		}
	})
	hn.env.RunFor(10 * sim.Second)
	hn.env.Shutdown()
	if hn.q.EmulatedOps != 2 {
		t.Fatalf("emulated ops = %d", hn.q.EmulatedOps)
	}
	if hn.q.Blk.BytesWritten != 1<<20 {
		t.Fatalf("written = %d", hn.q.Blk.BytesWritten)
	}
}

func TestEmulationSlowerThanPV(t *testing.T) {
	hn := setup(t)
	var emulT, pvT sim.Duration
	hn.env.Spawn("compare", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 20; i++ {
			hn.q.DiskWrite(p, 4096, true)
		}
		emulT = p.Now().Sub(t0)
		t0 = p.Now()
		for i := 0; i < 20; i++ {
			hn.q.Blk.Write(p, 4096, true)
		}
		pvT = p.Now().Sub(t0)
	})
	hn.env.RunFor(30 * sim.Second)
	hn.env.Shutdown()
	if emulT <= pvT {
		t.Fatalf("emulated %v not slower than PV %v", emulT, pvT)
	}
}

func TestEscapeContained(t *testing.T) {
	hn := setup(t)
	var escErr, ownErr error
	hn.env.Spawn("attack", func(p *sim.Proc) {
		// Mapping its own guest is legitimate (that is its job).
		ownErr = hn.h.MapForeign(hn.q.Dom, hn.guest.ID, 0)
		// Mapping anyone else must fail: the §6.2.1 containment property.
		escErr = hn.q.AttemptEscape(p, hn.victim.ID)
	})
	hn.env.RunFor(sim.Second)
	hn.env.Shutdown()
	if ownErr != nil {
		t.Fatalf("own-guest map: %v", ownErr)
	}
	if !errors.Is(escErr, xtypes.ErrPerm) {
		t.Fatalf("escape attempt: %v", escErr)
	}
}

func TestNoPathsConfigured(t *testing.T) {
	env := sim.NewEnv(1)
	h := hv.New(env, hw.NewMachine(env))
	qd, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "q", MemMB: 64, Shard: true})
	h.Unpause(hv.SystemCaller, qd.ID)
	g, _ := h.CreateDomain(hv.SystemCaller, hv.DomainConfig{Name: "g", MemMB: 64})
	h.Unpause(hv.SystemCaller, g.ID)
	h.AssignPrivileges(hv.SystemCaller, qd.ID, hv.Assignment{Hypercalls: []xtypes.Hypercall{xtypes.HyperMapForeign}})
	h.SetPrivilegedFor(hv.SystemCaller, qd.ID, g.ID)
	q := New(h, qd.ID, g.ID)
	var err error
	env.Spawn("io", func(p *sim.Proc) { err = q.DiskWrite(p, 4096, true) })
	env.RunAll()
	if !errors.Is(err, xtypes.ErrInvalid) {
		t.Fatalf("io without path: %v", err)
	}
}
